// Kill-and-resume determinism suite (checkpoint/resume tentpole): on random
// QUEST databases, interrupting a mining run at an arbitrary point (pattern
// cap, the CLI's stand-in for SIGINT/budget/fault exits) and resuming from
// the final checkpoint must produce output byte-identical to an
// uninterrupted run — same patterns in the same emission order, and the
// merged metrics delta equal to the clean run's — for both pattern
// languages, both growth backends, and the level-wise miners.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/quest.h"
#include "io/checkpoint.h"
#include "miner/coincidence_growth.h"
#include "miner/endpoint_growth.h"
#include "miner/levelwise.h"
#include "obs/stats_domain.h"
#include "testing/test_util.h"
#include "util/fault.h"

namespace tpm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

IntervalDatabase MakeDb(uint64_t seed) {
  QuestConfig config;
  config.num_sequences = 30;
  config.avg_intervals_per_sequence = 6.0;
  config.num_symbols = 12;
  config.num_potential_patterns = 8;
  config.pattern_injection_prob = 0.7;
  config.seed = seed;
  auto db = GenerateQuest(config);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

MinerOptions BaseOptions(uint32_t pruning_mask) {
  MinerOptions options;
  options.min_support = 0.2;
  options.pair_pruning = (pruning_mask & 1) != 0;
  options.postfix_pruning = (pruning_mask & 2) != 0;
  options.validity_pruning = (pruning_mask & 4) != 0;
  return options;
}

// Renders patterns in EMISSION order (unlike testing::Render, which sorts):
// resume must reproduce the exact pattern stream, not just the same set.
template <typename PatternT>
std::string EmissionRender(const MiningResult<PatternT>& result,
                           const Dictionary& dict) {
  std::string out;
  for (const auto& mp : result.patterns) {
    out += mp.pattern.ToString(dict) + "@" + std::to_string(mp.support) + "\n";
  }
  return out;
}

// The comparable slice of a run's metrics delta (testing::): miner.arena.*,
// process.*, and miner.worker.* legitimately differ (a resumed run projects
// fewer subtrees, allocator history shifts RSS, and scheduling attribution
// is timing-dependent), but every search metric — nodes, candidates,
// prunes, states, flight events — must merge back byte-identical.
using ::tpm::testing::ComparableMetricsJson;

// Runs `mine` three ways — clean, interrupted at `cap` patterns with a
// checkpoint, resumed from that checkpoint — and asserts the resumed run
// reproduces the clean run byte-for-byte (patterns and merged metrics).
template <typename MineFn>
void ExpectInterruptResumeExact(const IntervalDatabase& db,
                                const MinerOptions& base, uint64_t cap,
                                MineFn mine, const std::string& tag) {
  SCOPED_TRACE(tag + " cap=" + std::to_string(cap));
  MinerOptions clean_options = base;
  obs::StatsDomain clean_domain("clean");
  clean_options.stats_domain = &clean_domain;
  auto clean = mine(db, clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_FALSE(clean->stats.truncated);
  if (clean->patterns.size() <= cap) return;  // cap would not interrupt

  const std::string path = TempPath("resume_" + tag + ".tpmc");
  MinerOptions part_options = base;
  part_options.max_patterns = cap;
  obs::StatsDomain part_domain("part");
  part_options.stats_domain = &part_domain;
  CheckpointWriter writer(path, 0.0);
  part_options.checkpoint_writer = &writer;
  auto part = mine(db, part_options);
  ASSERT_TRUE(part.ok()) << part.status();
  ASSERT_TRUE(part->stats.truncated);
  ASSERT_GE(writer.writes(), 1u);  // at least the final checkpoint

  auto ckpt = ReadCheckpointFile(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  MinerOptions resume_options = base;  // budgets may differ freely on resume
  obs::StatsDomain resume_domain("resume");
  resume_options.stats_domain = &resume_domain;
  resume_options.resume = &*ckpt;
  auto resumed = mine(db, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_FALSE(resumed->stats.truncated);

  EXPECT_EQ(EmissionRender(*resumed, db.dict()),
            EmissionRender(*clean, db.dict()));
  EXPECT_EQ(ComparableMetricsJson(resumed->stats.metrics),
            ComparableMetricsJson(clean->stats.metrics));
  std::remove(path.c_str());
}

// Interruption points: immediately (before any unit completes), mid-run, and
// one short of completion — derived from the clean run's pattern count.
std::vector<uint64_t> CapsFor(size_t num_patterns) {
  std::vector<uint64_t> caps = {1};
  if (num_patterns > 2) caps.push_back(num_patterns / 2);
  if (num_patterns > 1) caps.push_back(num_patterns - 1);
  return caps;
}

class CheckpointResumeTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(QuestSeeds, CheckpointResumeTest,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

TEST_P(CheckpointResumeTest, EndpointGrowthEveryMaskAndCap) {
  const IntervalDatabase db = MakeDb(GetParam());
  auto mine = [](const IntervalDatabase& d, const MinerOptions& o) {
    return MineEndpointGrowth(d, o, EndpointGrowthConfig{});
  };
  for (uint32_t mask : {7u, 0u, 5u, 2u}) {
    MinerOptions base = BaseOptions(mask);
    auto clean = MineEndpointGrowth(db, base, EndpointGrowthConfig{});
    ASSERT_TRUE(clean.ok()) << clean.status();
    for (uint64_t cap : CapsFor(clean->patterns.size())) {
      ExpectInterruptResumeExact(db, base, cap, mine,
                                 "ep_growth_m" + std::to_string(mask));
    }
  }
}

TEST_P(CheckpointResumeTest, EndpointPhysicalProjectionBaseline) {
  const IntervalDatabase db = MakeDb(GetParam());
  EndpointGrowthConfig config;
  config.physical_projection = true;
  config.force_disable_prunings = true;
  auto mine = [config](const IntervalDatabase& d, const MinerOptions& o) {
    return MineEndpointGrowth(d, o, config);
  };
  const MinerOptions base = BaseOptions(0);
  auto clean = MineEndpointGrowth(db, base, config);
  ASSERT_TRUE(clean.ok()) << clean.status();
  for (uint64_t cap : CapsFor(clean->patterns.size())) {
    ExpectInterruptResumeExact(db, base, cap, mine, "ep_physical");
  }
}

TEST_P(CheckpointResumeTest, CoincidenceGrowthEveryMaskAndCap) {
  const IntervalDatabase db = MakeDb(GetParam());
  auto mine = [](const IntervalDatabase& d, const MinerOptions& o) {
    return MineCoincidenceGrowth(d, o, CoincidenceGrowthConfig{});
  };
  for (uint32_t mask : {3u, 0u}) {
    MinerOptions base = BaseOptions(mask);
    auto clean = MineCoincidenceGrowth(db, base, CoincidenceGrowthConfig{});
    ASSERT_TRUE(clean.ok()) << clean.status();
    for (uint64_t cap : CapsFor(clean->patterns.size())) {
      ExpectInterruptResumeExact(db, base, cap, mine,
                                 "co_growth_m" + std::to_string(mask));
    }
  }
}

TEST_P(CheckpointResumeTest, EndpointLevelwise) {
  const IntervalDatabase db = MakeDb(GetParam());
  auto mine = [](const IntervalDatabase& d, const MinerOptions& o) {
    return MineLevelwiseEndpoint(d, o, LevelwiseConfig{});
  };
  const MinerOptions base = BaseOptions(0);
  auto clean = MineLevelwiseEndpoint(db, base, LevelwiseConfig{});
  ASSERT_TRUE(clean.ok()) << clean.status();
  for (uint64_t cap : CapsFor(clean->patterns.size())) {
    ExpectInterruptResumeExact(db, base, cap, mine, "ep_levelwise");
  }
}

TEST_P(CheckpointResumeTest, CoincidenceLevelwise) {
  const IntervalDatabase db = MakeDb(GetParam());
  auto mine = [](const IntervalDatabase& d, const MinerOptions& o) {
    return MineLevelwiseCoincidence(d, o, LevelwiseConfig{});
  };
  const MinerOptions base = BaseOptions(0);
  auto clean = MineLevelwiseCoincidence(db, base, LevelwiseConfig{});
  ASSERT_TRUE(clean.ok()) << clean.status();
  for (uint64_t cap : CapsFor(clean->patterns.size())) {
    ExpectInterruptResumeExact(db, base, cap, mine, "co_levelwise");
  }
}

// A second interruption during a resumed run must fold transitively: the
// final resume still reproduces the clean run exactly.
TEST_P(CheckpointResumeTest, ResumeOfResumeFoldsTransitively) {
  const IntervalDatabase db = MakeDb(GetParam());
  const MinerOptions base = BaseOptions(7);
  obs::StatsDomain clean_domain("clean");
  MinerOptions clean_options = base;
  clean_options.stats_domain = &clean_domain;
  auto clean = MineEndpointGrowth(db, clean_options, EndpointGrowthConfig{});
  ASSERT_TRUE(clean.ok()) << clean.status();
  if (clean->patterns.size() < 3) return;

  const std::string path = TempPath("resume_twice.tpmc");
  MinerOptions first = base;
  first.max_patterns = 1;
  CheckpointWriter w1(path, 0.0);
  first.checkpoint_writer = &w1;
  obs::StatsDomain d1("first");
  first.stats_domain = &d1;
  ASSERT_TRUE(MineEndpointGrowth(db, first, EndpointGrowthConfig{}).ok());
  auto ckpt1 = ReadCheckpointFile(path);
  ASSERT_TRUE(ckpt1.ok()) << ckpt1.status();

  MinerOptions second = base;
  second.max_patterns = clean->patterns.size() - 1;
  second.resume = &*ckpt1;
  CheckpointWriter w2(path, 0.0);
  second.checkpoint_writer = &w2;
  obs::StatsDomain d2("second");
  second.stats_domain = &d2;
  auto mid = MineEndpointGrowth(db, second, EndpointGrowthConfig{});
  ASSERT_TRUE(mid.ok()) << mid.status();
  ASSERT_TRUE(mid->stats.truncated);
  auto ckpt2 = ReadCheckpointFile(path);
  ASSERT_TRUE(ckpt2.ok()) << ckpt2.status();

  MinerOptions last = base;
  last.resume = &*ckpt2;
  obs::StatsDomain d3("last");
  last.stats_domain = &d3;
  auto final_run = MineEndpointGrowth(db, last, EndpointGrowthConfig{});
  ASSERT_TRUE(final_run.ok()) << final_run.status();
  EXPECT_EQ(EmissionRender(*final_run, db.dict()),
            EmissionRender(*clean, db.dict()));
  EXPECT_EQ(ComparableMetricsJson(final_run->stats.metrics),
            ComparableMetricsJson(clean->stats.metrics));
  std::remove(path.c_str());
}

// Checkpoints are scheduling-independent durable state: a run interrupted
// while mining with N workers must resume byte-identically under any other
// worker count (and vice versa) — the v2 per-unit pattern grouping is what
// makes the regrouping thread-count-agnostic.
TEST_P(CheckpointResumeTest, ResumeAcrossThreadCounts) {
  const IntervalDatabase db = MakeDb(GetParam());
  const MinerOptions base = BaseOptions(7);
  obs::StatsDomain clean_domain("clean");
  MinerOptions clean_options = base;
  clean_options.stats_domain = &clean_domain;
  auto clean = MineEndpointGrowth(db, clean_options, EndpointGrowthConfig{});
  ASSERT_TRUE(clean.ok()) << clean.status();
  if (clean->patterns.size() < 3) return;
  const uint64_t cap = clean->patterns.size() / 2;

  // (interrupting threads, resuming threads): parallel→serial and
  // serial→parallel, plus parallel→parallel with steal on the resume.
  struct Combo {
    uint32_t part_threads;
    uint32_t resume_threads;
    bool resume_steal;
  };
  for (const Combo c : {Combo{4, 1, false}, Combo{1, 8, false},
                        Combo{2, 4, true}}) {
    SCOPED_TRACE("part=" + std::to_string(c.part_threads) +
                 " resume=" + std::to_string(c.resume_threads) +
                 (c.resume_steal ? " steal" : ""));
    const std::string path = TempPath("resume_threads.tpmc");
    MinerOptions part = base;
    part.threads = c.part_threads;
    part.max_patterns = cap;
    CheckpointWriter writer(path, 0.0);
    part.checkpoint_writer = &writer;
    obs::StatsDomain part_domain("part");
    part.stats_domain = &part_domain;
    auto interrupted = MineEndpointGrowth(db, part, EndpointGrowthConfig{});
    ASSERT_TRUE(interrupted.ok()) << interrupted.status();
    ASSERT_TRUE(interrupted->stats.truncated);
    auto ckpt = ReadCheckpointFile(path);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status();

    MinerOptions resume_options = base;
    resume_options.threads = c.resume_threads;
    resume_options.steal = c.resume_steal;
    resume_options.resume = &*ckpt;
    obs::StatsDomain resume_domain("resume");
    resume_options.stats_domain = &resume_domain;
    auto resumed = MineEndpointGrowth(db, resume_options,
                                      EndpointGrowthConfig{});
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_FALSE(resumed->stats.truncated);
    EXPECT_EQ(EmissionRender(*resumed, db.dict()),
              EmissionRender(*clean, db.dict()));
    EXPECT_EQ(ComparableMetricsJson(resumed->stats.metrics),
              ComparableMetricsJson(clean->stats.metrics));
    std::remove(path.c_str());
  }
}

TEST(CheckpointResumeValidationTest, MismatchedOptionsNameEveryField) {
  const IntervalDatabase db = MakeDb(42);
  MinerOptions options = BaseOptions(7);
  const std::string path = TempPath("resume_mismatch.tpmc");
  CheckpointWriter writer(path, 0.0);
  MinerOptions part = options;
  part.max_patterns = 1;
  part.checkpoint_writer = &writer;
  ASSERT_TRUE(MineEndpointGrowth(db, part, EndpointGrowthConfig{}).ok());
  auto ckpt = ReadCheckpointFile(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  MinerOptions other = options;
  other.min_support = 0.5;
  other.pair_pruning = false;
  other.resume = &*ckpt;
  const Status st =
      MineEndpointGrowth(db, other, EndpointGrowthConfig{}).status();
  ASSERT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  EXPECT_NE(st.message().find("min_support"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("pair_pruning"), std::string::npos) << st.ToString();
  EXPECT_EQ(st.message().find("postfix_pruning"), std::string::npos)
      << "unchanged field named: " << st.ToString();

  // A growth checkpoint offered to the level-wise miner differs in algo.
  MinerOptions lw = options;
  lw.resume = &*ckpt;
  const Status algo_st =
      MineLevelwiseEndpoint(db, lw, LevelwiseConfig{}).status();
  ASSERT_EQ(algo_st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(algo_st.message().find("algo"), std::string::npos)
      << algo_st.ToString();

  // A different database differs in fingerprint.
  const IntervalDatabase other_db = MakeDb(43);
  MinerOptions same = options;
  same.resume = &*ckpt;
  const Status db_st =
      MineEndpointGrowth(other_db, same, EndpointGrowthConfig{}).status();
  ASSERT_EQ(db_st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(db_st.message().find("different database"), std::string::npos)
      << db_st.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointResumeValidationTest, GatedWriterStillLeavesFinalCheckpoint) {
  // With a one-hour gate no interval write fires; the final checkpoint on
  // the truncated exit must still land and must still resume exactly.
  const IntervalDatabase db = MakeDb(44);
  const MinerOptions base = BaseOptions(7);
  auto clean = MineEndpointGrowth(db, base, EndpointGrowthConfig{});
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_GT(clean->patterns.size(), 1u);

  const std::string path = TempPath("resume_gated.tpmc");
  MinerOptions part = base;
  part.max_patterns = clean->patterns.size() - 1;
  CheckpointWriter writer(path, 3600.0);
  part.checkpoint_writer = &writer;
  auto truncated = MineEndpointGrowth(db, part, EndpointGrowthConfig{});
  ASSERT_TRUE(truncated.ok()) << truncated.status();
  ASSERT_TRUE(truncated->stats.truncated);
  EXPECT_EQ(writer.writes(), 1u);  // the final checkpoint only

  auto ckpt = ReadCheckpointFile(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  MinerOptions resume = base;
  resume.resume = &*ckpt;
  auto resumed = MineEndpointGrowth(db, resume, EndpointGrowthConfig{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(EmissionRender(*resumed, db.dict()),
            EmissionRender(*clean, db.dict()));
  std::remove(path.c_str());
}

TEST(CheckpointResumeValidationTest, InjectedWriteFaultFailsTheRun) {
  const IntervalDatabase db = MakeDb(45);
  MinerOptions options = BaseOptions(7);
  const std::string path = TempPath("resume_fault.tpmc");
  CheckpointWriter writer(path, 0.0);
  options.checkpoint_writer = &writer;
  fault::ScopedFault fault("io.checkpoint.write", 1);
  const Status st =
      MineEndpointGrowth(db, options, EndpointGrowthConfig{}).status();
  ASSERT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.message().find("injected"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpm
