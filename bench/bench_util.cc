#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "io/atomic_write.h"
#include "util/string_util.h"

namespace tpm {
namespace bench {

std::string Cell::SecondsStr() const {
  if (dnf) return "DNF";
  return StringPrintf("%.3f", seconds);
}

namespace {

Cell MakeCell(const std::string& algo, const std::string& config,
              const MiningStats& stats, uint64_t patterns) {
  Cell c;
  c.algo = algo;
  c.config = config;
  c.seconds = stats.build_seconds + stats.mine_seconds;
  c.patterns = patterns;
  c.memory_bytes = stats.peak_tracked_bytes;
  c.candidates = stats.candidates_checked;
  c.states = stats.states_created;
  c.dnf = stats.truncated;
  c.stop_reason = stats.stop_reason;
  c.metrics = stats.metrics;
  return c;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += StringPrintf("\\u%04x", ch);
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

Cell RunEndpoint(EndpointMiner* miner, const IntervalDatabase& db,
                 MinerOptions options, const std::string& config,
                 double budget_seconds) {
  options.time_budget_seconds = budget_seconds;
  auto result = miner->Mine(db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", miner->name().c_str(),
                 result.status().ToString().c_str());
    Cell c;
    c.algo = miner->name();
    c.config = config;
    c.dnf = true;
    return c;
  }
  return MakeCell(miner->name(), config, result->stats, result->patterns.size());
}

Cell RunCoincidence(CoincidenceMiner* miner, const IntervalDatabase& db,
                    MinerOptions options, const std::string& config,
                    double budget_seconds) {
  options.time_budget_seconds = budget_seconds;
  auto result = miner->Mine(db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", miner->name().c_str(),
                 result.status().ToString().c_str());
    Cell c;
    c.algo = miner->name();
    c.config = config;
    c.dnf = true;
    return c;
  }
  return MakeCell(miner->name(), config, result->stats, result->patterns.size());
}

void PrintBanner(const std::string& figure, const std::string& claim,
                 const std::string& setup) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper claim : %s\n", claim.c_str());
  std::printf("setup       : %s\n", setup.c_str());
  std::printf("================================================================\n");
}

void PrintTable(const std::vector<Cell>& cells) {
  // Collect algorithms (stable order of first appearance) and configs.
  std::vector<std::string> algos;
  std::vector<std::string> configs;
  for (const Cell& c : cells) {
    if (std::find(algos.begin(), algos.end(), c.algo) == algos.end()) {
      algos.push_back(c.algo);
    }
    if (std::find(configs.begin(), configs.end(), c.config) == configs.end()) {
      configs.push_back(c.config);
    }
  }
  auto find_cell = [&](const std::string& algo,
                       const std::string& config) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.algo == algo && c.config == config) return &c;
    }
    return nullptr;
  };

  std::printf("%-10s", "");
  for (const std::string& a : algos) std::printf(" | %-21s", a.c_str());
  std::printf("\n%-10s", "config");
  for (size_t i = 0; i < algos.size(); ++i) std::printf(" | %9s %11s", "time(s)", "patterns");
  std::printf("\n");
  for (const std::string& cfg : configs) {
    std::printf("%-10s", cfg.c_str());
    for (const std::string& a : algos) {
      const Cell* c = find_cell(a, cfg);
      if (c == nullptr) {
        std::printf(" | %9s %11s", "-", "-");
      } else {
        std::printf(" | %9s %11llu", c->SecondsStr().c_str(),
                    static_cast<unsigned long long>(c->patterns));
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\ncsv: algo,config,seconds,patterns,memory_bytes,candidates,states,dnf,"
      "stop_reason\n");
  for (const Cell& c : cells) {
    std::printf("csv: %s,%s,%.4f,%llu,%zu,%llu,%llu,%d,%s\n", c.algo.c_str(),
                c.config.c_str(), c.seconds,
                static_cast<unsigned long long>(c.patterns), c.memory_bytes,
                static_cast<unsigned long long>(c.candidates),
                static_cast<unsigned long long>(c.states), c.dnf ? 1 : 0,
                StopReasonName(c.stop_reason));
  }
  std::printf("\n");
}

void WriteJsonRecords(const std::string& name, const std::vector<Cell>& cells) {
  // Benches are single-threaded drivers and never call setenv.
  const char* dir =
      std::getenv("TPM_BENCH_JSON_DIR");  // NOLINT(concurrency-mt-unsafe)
  const std::string path =
      std::string(dir != nullptr ? dir : ".") + "/BENCH_" + name + ".json";
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"algo\": " << JsonQuote(c.algo)
        << ", \"config\": " << JsonQuote(c.config)
        << ", \"seconds\": " << StringPrintf("%.6f", c.seconds)
        << ", \"patterns\": " << c.patterns
        << ", \"memory_bytes\": " << c.memory_bytes
        << ", \"candidates\": " << c.candidates << ", \"states\": " << c.states
        << ", \"dnf\": " << (c.dnf ? "true" : "false")
        << ", \"stop_reason\": " << JsonQuote(StopReasonName(c.stop_reason))
        << ", \"metrics\": " << c.metrics.ToJson() << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
  if (Status st = WriteFileAtomic(path, out.str()); !st.ok()) {
    std::fprintf(stderr, "bench: %s (skipping)\n", st.ToString().c_str());
    return;
  }
  std::printf("json: %s\n", path.c_str());
}

double BenchScale() {
  // Benches are single-threaded drivers and never call setenv.
  const char* env =
      std::getenv("TPM_BENCH_SCALE");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace bench
}  // namespace tpm
