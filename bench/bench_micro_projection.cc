// Microbenchmark: copy vs pseudo projection backends (docs/ARCHITECTURE.md).
//
// Two measurements on the Figure 1(c) scalability substrate (C8N200,
// seed 101):
//
//  1. Projection replay (the headline): identical push/finalize traffic is
//     driven through ProjectionBuilder in both modes — every endpoint of
//     every sequence staged into a symbol-keyed bucket, all buckets
//     finalized, arenas reset — isolating the projection layer from the
//     pattern-language scan logic the two backends share. Engineering
//     guardrail: the arena-backed pseudo backend must stay >=1.5x faster
//     and >=2x lighter (peak tracked bytes) than the deprecated copy path,
//     or the refactor has regressed.
//
//  2. End-to-end miner runs in both modes for context (the scan dominates
//     total mine time, so these ratios are much flatter by construction).

#include <deque>
#include <mutex>

#include "bench_util.h"
#include "core/endpoint.h"
#include "core/projection.h"
#include "datagen/quest.h"
#include "miner/coincidence_growth.h"
#include "miner/endpoint_growth.h"
#include "obs/progress.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/sync.h"
#include "util/timer.h"

using namespace tpm;
using namespace tpm::bench;

namespace {

Cell CellFrom(const std::string& algo, const std::string& config,
              const MiningStats& stats, size_t patterns) {
  Cell c;
  c.algo = algo;
  c.config = config;
  c.seconds = stats.mine_seconds;  // growth phase; build is mode-independent
  c.patterns = patterns;
  c.memory_bytes = stats.peak_tracked_bytes;
  c.candidates = stats.candidates_checked;
  c.states = stats.states_created;
  c.dnf = stats.truncated;
  c.stop_reason = stats.stop_reason;
  c.metrics = stats.metrics;
  return c;
}

// Replays one round of realistic projection traffic: every endpoint item of
// every sequence is staged into a symbol-keyed bucket (grouped by sequence,
// as the engine's span scan guarantees), then every bucket finalizes into
// depth 1 and the staging arena resets — exactly the engine's node
// lifecycle, including its tracker charges for the copy backend's
// capacity-based heap estimates.
Cell ReplayProjection(ProjectionMode mode, const EndpointDatabase& edb,
                      uint32_t num_buckets, uint32_t stride, int rounds) {
  MemoryTracker tracker;
  ProjectionArenas arenas(&tracker);
  uint64_t states = 0;
  WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    std::deque<ProjectionBuilder> buckets(num_buckets);
    for (ProjectionBuilder& b : buckets) b.Init(mode, stride, &arenas, 1);
    for (uint32_t s = 0; s < edb.size(); ++s) {
      const EndpointSequence& es = edb[s];
      for (uint32_t p = 0; p < es.num_items(); ++p) {
        ProjectionBuilder& b = buckets[es.item(p) % num_buckets];
        uint32_t* aux = b.Push(s, p, 0);
        for (uint32_t k = 0; k < stride; ++k) aux[k] = p + k;
        ++states;
      }
    }
    size_t staged_bytes = 0;
    for (ProjectionBuilder& b : buckets) staged_bytes += b.staged_heap_bytes();
    tracker.Allocate(staged_bytes);
    const Arena::Mark mark = arenas.depth(1).mark();
    size_t final_bytes = 0;
    for (ProjectionBuilder& b : buckets) {
      b.FinalizeKeepAll();
      final_bytes += b.final_heap_bytes();
    }
    tracker.Allocate(final_bytes);
    tracker.Release(staged_bytes);
    arenas.staging().Reset();
    tracker.Release(final_bytes);
    arenas.depth(1).Rewind(mark);
  }
  Cell c;
  c.algo = "projection-replay";
  c.config = ProjectionModeName(mode);
  c.seconds = timer.ElapsedSeconds();
  c.memory_bytes = tracker.peak_bytes();
  c.states = states;
  return c;
}

void PrintRatio(const char* what, const Cell& copy, const Cell& pseudo) {
  if (copy.dnf || pseudo.dnf || pseudo.seconds <= 0.0 ||
      pseudo.memory_bytes == 0) {
    std::printf("ratio: %s copy/pseudo unavailable (dnf or empty run)\n", what);
    return;
  }
  std::printf("ratio: %s copy/pseudo time=%.2fx peak_bytes=%.2fx\n", what,
              copy.seconds / pseudo.seconds,
              static_cast<double>(copy.memory_bytes) /
                  static_cast<double>(pseudo.memory_bytes));
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();
  const double kBudget = 120.0;

  PrintBanner(
      "Micro: projection backends (copy vs pseudo)",
      "arena-backed pseudo-projection beats the legacy copy path on "
      "projection wall-time and peak tracked bytes",
      "fig1c substrate C8N200 seed 101, |D| = 4k, minsup 1%, budget 120s/run");

  QuestConfig config;
  config.num_sequences = static_cast<uint32_t>(4000 * scale);
  config.avg_intervals_per_sequence = 8.0;
  config.num_symbols = 200;
  config.seed = 101;
  auto db = GenerateQuest(config);
  TPM_CHECK_OK(db.status());

  std::vector<Cell> cells;

  // 1. Projection-layer replay.
  const EndpointDatabase edb = EndpointDatabase::FromDatabase(*db);
  const int kRounds = std::max(1, static_cast<int>(10 * scale));
  // The endpoint root scan — the highest-traffic projection of any run —
  // buckets every endpoint by symbol with one open obligation per state.
  const uint32_t kStride = 1;
  cells.push_back(ReplayProjection(
      ProjectionMode::kPseudo, edb,
      static_cast<uint32_t>(edb.num_symbols()), kStride, kRounds));
  cells.push_back(ReplayProjection(
      ProjectionMode::kCopy, edb,
      static_cast<uint32_t>(edb.num_symbols()), kStride, kRounds));

  // 2. End-to-end miner runs for context.
  MinerOptions options;
  options.min_support = 0.01;
  options.time_budget_seconds = kBudget;
  for (ProjectionMode mode : {ProjectionMode::kPseudo, ProjectionMode::kCopy}) {
    options.projection = mode;
    const std::string cfg = ProjectionModeName(mode);

    auto ep = MineEndpointGrowth(*db, options, EndpointGrowthConfig{});
    TPM_CHECK_OK(ep.status());
    cells.push_back(
        CellFrom("P-TPMiner/E", cfg, ep->stats, ep->patterns.size()));

    auto cp = MineCoincidenceGrowth(*db, options, CoincidenceGrowthConfig{});
    TPM_CHECK_OK(cp.status());
    cells.push_back(
        CellFrom("P-TPMiner/C", cfg, cp->stats, cp->patterns.size()));
  }
  // 3. Observability overhead: the same endpoint run with and without a
  //    progress tracker at the default `tpm mine --progress` cadence (1s).
  //    The tracker's hot cost is TickNode — one branch per expanded node
  //    plus a clock read every 32nd — so the guardrail is <5% growth-phase
  //    overhead (docs/OBSERVABILITY.md, "Progress overhead").
  options.projection = ProjectionMode::kPseudo;
  options.progress = nullptr;
  auto off = MineEndpointGrowth(*db, options, EndpointGrowthConfig{});
  TPM_CHECK_OK(off.status());
  cells.push_back(
      CellFrom("P-TPMiner/E", "progress-off", off->stats, off->patterns.size()));

  uint64_t sink_calls = 0;
  obs::ProgressTracker tracker(
      1.0, [&sink_calls](const obs::ProgressSnapshot&) { ++sink_calls; });
  options.progress = &tracker;
  auto on = MineEndpointGrowth(*db, options, EndpointGrowthConfig{});
  TPM_CHECK_OK(on.status());
  options.progress = nullptr;
  cells.push_back(
      CellFrom("P-TPMiner/E", "progress-on", on->stats, on->patterns.size()));

  // 4. Sync-wrapper overhead: uncontended lock/unlock through tpm::Mutex vs
  //    a raw std::mutex. In this build TPM_LOCKDEP is off, so the wrapper's
  //    Tier E hooks are compiled out and the two rows must be within noise
  //    of each other — the guardrail that the lockdep option costs nothing
  //    when disabled (docs/STATIC_ANALYSIS.md, "Runtime lockdep").
  {
    const uint64_t kIters = static_cast<uint64_t>(2000000 * scale) + 1;
    uint64_t acc = 0;
    Mutex tpm_mu;
    WallTimer tpm_timer;
    for (uint64_t i = 0; i < kIters; ++i) {
      MutexLock lock(&tpm_mu);
      ++acc;
    }
    Cell tpm_cell;
    tpm_cell.algo = "sync-mutex";
    tpm_cell.config = "tpm";
    tpm_cell.seconds = tpm_timer.ElapsedSeconds();
    tpm_cell.states = acc;
    cells.push_back(tpm_cell);

    std::mutex raw_mu;
    WallTimer raw_timer;
    for (uint64_t i = 0; i < kIters; ++i) {
      std::lock_guard<std::mutex> lock(raw_mu);
      ++acc;
    }
    Cell raw_cell;
    raw_cell.algo = "sync-mutex";
    raw_cell.config = "std";
    raw_cell.seconds = raw_timer.ElapsedSeconds();
    raw_cell.states = acc - kIters;
    cells.push_back(raw_cell);
    if (raw_cell.seconds > 0.0) {
      std::printf("ratio: sync-mutex tpm/std time=%.3fx (%llu lock/unlock pairs)\n",
                  tpm_cell.seconds / raw_cell.seconds,
                  static_cast<unsigned long long>(kIters));
    }
  }

  // 5. Parallel scaling: the endpoint mine at 1/2/4/8 workers (scheduler /
  //    worker / merger split, docs/ARCHITECTURE.md). Output is byte-identical
  //    across rows by construction — the interesting number is the wall-clock
  //    column. The substrate gets a scale floor so the single-thread run is
  //    long enough (~100ms) to measure scheduling against even under CI's
  //    reduced TPM_BENCH_SCALE; CI asserts the 8-thread row at <=0.5x the
  //    single-thread row from BENCH_micro.json when the host has the cores.
  const size_t threads_base = cells.size();
  QuestConfig par_config = config;
  par_config.num_sequences =
      static_cast<uint32_t>(4000 * std::max(scale, 0.5));
  auto par_db = GenerateQuest(par_config);
  TPM_CHECK_OK(par_db.status());
  MinerOptions par_options;
  par_options.min_support = 0.005;
  par_options.time_budget_seconds = kBudget;
  par_options.steal = true;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    par_options.threads = threads;
    auto run = MineEndpointGrowth(*par_db, par_options, EndpointGrowthConfig{});
    TPM_CHECK_OK(run.status());
    cells.push_back(CellFrom("P-TPMiner/E", "threads-" + std::to_string(threads),
                             run->stats, run->patterns.size()));
  }

  PrintTable(cells);
  PrintRatio("projection-replay", cells[1], cells[0]);
  PrintRatio("e2e endpoint", cells[4], cells[2]);
  PrintRatio("e2e coincidence", cells[5], cells[3]);
  if (cells[6].seconds > 0.0) {
    std::printf(
        "ratio: progress on/off time=%.3fx (%llu snapshots emitted)\n",
        cells[7].seconds / cells[6].seconds,
        static_cast<unsigned long long>(tracker.snapshots_emitted()));
  }
  for (size_t i = threads_base + 1; i < cells.size(); ++i) {
    if (cells[i].seconds > 0.0) {
      std::printf("ratio: e2e endpoint %s speedup=%.2fx vs threads-1\n",
                  cells[i].config.c_str(),
                  cells[threads_base].seconds / cells[i].seconds);
    }
  }
  WriteJsonRecords("micro", cells);
  return 0;
}
