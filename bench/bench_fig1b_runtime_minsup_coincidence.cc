// Figure 1(b): runtime vs. minimum support, coincidence pattern language.
//
// Reproduction target: P-TPMiner/C (pseudo-projection + pruning) beats
// CTMiner (physical projection, no pruning) at every support level, with the
// gap widening as minsup drops.

#include "bench_util.h"
#include "datagen/quest.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace tpm;
using namespace tpm::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();

  QuestConfig config;
  config.num_sequences = static_cast<uint32_t>(2000 * scale);
  config.avg_intervals_per_sequence = 8.0;
  config.num_symbols = 200;
  config.seed = 101;
  auto db = GenerateQuest(config);
  TPM_CHECK_OK(db.status());

  PrintBanner(
      "Figure 1(b): runtime vs minsup (coincidence patterns)",
      "P-TPMiner/C beats CTMiner at every support; gap widens as minsup drops",
      config.Name() + ", minsup 2% -> 0.5%, budget 60s/run");

  const double kBudget = 60.0;
  std::vector<Cell> cells;
  for (double minsup : {0.02, 0.015, 0.01, 0.0075, 0.005}) {
    MinerOptions options;
    options.min_support = minsup;
    const std::string cfg = StringPrintf("%.2f%%", minsup * 100);
    cells.push_back(
        RunCoincidence(MakePTPMinerC().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakeCTMiner().get(), *db, options, cfg, kBudget));
  }
  PrintTable(cells);
  WriteJsonRecords("fig1b_runtime_minsup_coincidence", cells);
  return 0;
}
