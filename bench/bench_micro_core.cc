// Micro benchmarks (google-benchmark) for the substrates: representation
// construction, containment checks, generators and serialization. Not a
// paper figure — an engineering guardrail against substrate regressions.

#include <benchmark/benchmark.h>

#include "core/coincidence.h"
#include "core/containment.h"
#include "core/endpoint.h"
#include "datagen/quest.h"
#include "io/binary_format.h"
#include "io/crc32.h"
#include "miner/miner.h"
#include "util/macros.h"
#include "util/rng.h"

namespace tpm {
namespace {

IntervalDatabase MakeDb(uint32_t sequences, uint32_t symbols) {
  QuestConfig config;
  config.num_sequences = sequences;
  config.avg_intervals_per_sequence = 8.0;
  config.num_symbols = symbols;
  config.seed = 7;
  auto db = GenerateQuest(config);
  TPM_CHECK_OK(db.status());
  return std::move(db).ValueOrDie();
}

void BM_EndpointConversion(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(1000, 200);
  for (auto _ : state) {
    EndpointDatabase edb = EndpointDatabase::FromDatabase(db);
    benchmark::DoNotOptimize(edb);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.TotalIntervals()));
}
BENCHMARK(BM_EndpointConversion);

void BM_CoincidenceConversion(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(1000, 200);
  for (auto _ : state) {
    CoincidenceDatabase cdb = CoincidenceDatabase::FromDatabase(db);
    benchmark::DoNotOptimize(cdb);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.TotalIntervals()));
}
BENCHMARK(BM_CoincidenceConversion);

void BM_EndpointContainment(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(1000, 50);
  const EndpointDatabase edb = EndpointDatabase::FromDatabase(db);
  auto pattern = EndpointPattern::Parse("<{E0+}{E1+}{E0-}{E1-}>", db.dict());
  TPM_CHECK_OK(pattern.status());
  for (auto _ : state) {
    SupportCount support = CountSupport(edb, *pattern);
    benchmark::DoNotOptimize(support);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edb.size()));
}
BENCHMARK(BM_EndpointContainment);

void BM_CoincidenceContainment(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(1000, 50);
  const CoincidenceDatabase cdb = CoincidenceDatabase::FromDatabase(db);
  auto pattern = CoincidencePattern::Parse("<(E0)(E0 E1)(E1)>", db.dict());
  TPM_CHECK_OK(pattern.status());
  for (auto _ : state) {
    SupportCount support = CountSupport(cdb, *pattern);
    benchmark::DoNotOptimize(support);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cdb.size()));
}
BENCHMARK(BM_CoincidenceContainment);

void BM_QuestGeneration(benchmark::State& state) {
  QuestConfig config;
  config.num_sequences = 1000;
  config.num_symbols = 200;
  for (auto _ : state) {
    config.seed = static_cast<uint64_t>(state.iterations());
    auto db = GenerateQuest(config);
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_QuestGeneration);

void BM_BinaryRoundTrip(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(1000, 200);
  for (auto _ : state) {
    const std::string buffer = SerializeBinary(db);
    auto back = ParseBinary(buffer);
    TPM_CHECK_OK(back.status());
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.TotalIntervals()));
}
BENCHMARK(BM_BinaryRoundTrip);

void BM_Crc32(benchmark::State& state) {
  std::string data(1 << 20, 'x');
  Rng rng(1);
  for (char& c : data) c = static_cast<char>(rng.Next());
  for (auto _ : state) {
    uint32_t crc = Crc32(data.data(), data.size());
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32);

void BM_MinePTPMinerE(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(500, 200);
  MinerOptions options;
  options.min_support = 0.01;
  for (auto _ : state) {
    auto result = MakePTPMinerE()->Mine(db, options);
    TPM_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MinePTPMinerE);

void BM_MinePTPMinerC(benchmark::State& state) {
  const IntervalDatabase db = MakeDb(500, 200);
  MinerOptions options;
  // The coincidence language is dense; micro-benchmark a bounded slice of
  // the search (full-scale behaviour is measured by the figure benches).
  options.min_support = 0.05;
  options.max_items = 5;
  for (auto _ : state) {
    auto result = MakePTPMinerC()->Mine(db, options);
    TPM_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MinePTPMinerC);

}  // namespace
}  // namespace tpm

BENCHMARK_MAIN();
