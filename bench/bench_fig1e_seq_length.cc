// Figure 1(e): runtime vs. average sequence length (C) at fixed |D| and
// minsup.
//
// Reproduction target: cost grows super-linearly in sequence length for the
// physical-projection baselines (each node copies longer postfixes) while
// P-TPMiner degrades most gracefully.

#include "bench_util.h"
#include "datagen/quest.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace tpm;
using namespace tpm::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();
  const double kBudget = 120.0;

  PrintBanner(
      "Figure 1(e): runtime vs average sequence length",
      "longer sequences hurt physical projection most; P-TPMiner degrades "
      "most gracefully",
      "D2kN200, C = 4..16, minsup 2%, budget 120s/run");

  std::vector<Cell> cells;
  for (double c : {4.0, 6.0, 8.0, 12.0, 16.0}) {
    QuestConfig config;
    config.num_sequences = static_cast<uint32_t>(2000 * scale);
    config.avg_intervals_per_sequence = c;
    config.num_symbols = 200;
    config.seed = 101;
    auto db = GenerateQuest(config);
    TPM_CHECK_OK(db.status());

    MinerOptions options;
    options.min_support = 0.02;
    const std::string cfg = StringPrintf("C=%.0f", c);
    cells.push_back(
        RunEndpoint(MakePTPMinerE().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunEndpoint(MakeTPrefixSpan().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakePTPMinerC().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakeCTMiner().get(), *db, options, cfg, kBudget));
  }
  PrintTable(cells);
  WriteJsonRecords("fig1e_seq_length", cells);
  return 0;
}
