// Figure 1(c): scalability — runtime vs. database size at fixed minsup.
//
// Reproduction target: P-TPMiner scales near-linearly in the number of
// sequences (both pattern languages); the physical-projection baselines grow
// faster because per-node postfix copies grow with the data.

#include "bench_util.h"
#include "datagen/quest.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace tpm;
using namespace tpm::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();
  const double kBudget = 120.0;

  PrintBanner(
      "Figure 1(c): runtime vs |D| (scalability)",
      "P-TPMiner grows near-linearly with the number of sequences",
      "C8N200, |D| = 1k..16k, minsup 1%, budget 120s/run");

  std::vector<Cell> cells;
  for (uint32_t base : {1000, 2000, 4000, 8000, 16000}) {
    QuestConfig config;
    config.num_sequences = static_cast<uint32_t>(base * scale);
    config.avg_intervals_per_sequence = 8.0;
    config.num_symbols = 200;
    config.seed = 101;  // same pool across sizes: support ratios stay stable
    auto db = GenerateQuest(config);
    TPM_CHECK_OK(db.status());

    MinerOptions options;
    options.min_support = 0.01;
    const std::string cfg = StringPrintf("D=%uk", base / 1000);
    cells.push_back(
        RunEndpoint(MakePTPMinerE().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunEndpoint(MakeTPrefixSpan().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakePTPMinerC().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakeCTMiner().get(), *db, options, cfg, kBudget));
  }
  PrintTable(cells);
  WriteJsonRecords("fig1c_scalability", cells);
  return 0;
}
