// Table 1: real-dataset practicability study.
//
// Reproduction target: the paper applies P-TPMiner to real datasets to show
// the discovered patterns are meaningful. The original corpora (ASL, library
// lending, stock intervals) are simulated here per DESIGN.md §4; the table
// reports dataset statistics, mining cost for both pattern languages, and
// renders the strongest non-trivial patterns of each domain.

#include <cstdio>

#include "analysis/postprocess.h"
#include "analysis/profile.h"
#include "analysis/render.h"
#include "bench_util.h"
#include "datagen/realistic.h"
#include "util/logging.h"
#include "util/macros.h"

using namespace tpm;
using namespace tpm::bench;

namespace {

void Study(const std::string& name, const IntervalDatabase& db, double minsup,
           uint32_t max_items) {
  const DatabaseStats stats = db.ComputeStats();
  std::printf("--- %s ---\n", name.c_str());
  std::printf("stats       : %s\n", stats.ToString().c_str());
  const RelationHistogram hist = ComputeRelationHistogram(db, 2000);
  std::printf("concurrency : %.1f%% of interval pairs share time\n",
              100.0 * hist.ConcurrencyFraction());

  MinerOptions options;
  options.min_support = minsup;
  options.max_items = max_items;
  options.time_budget_seconds = 120.0;

  auto ep = MakePTPMinerE()->Mine(db, options);
  TPM_CHECK_OK(ep.status());
  auto cp = MakePTPMinerC()->Mine(db, options);
  TPM_CHECK_OK(cp.status());

  std::printf("minsup      : %.1f%%\n", minsup * 100);
  std::printf("endpoint    : %zu patterns in %.3fs%s\n", ep->patterns.size(),
              ep->stats.build_seconds + ep->stats.mine_seconds,
              ep->stats.truncated ? " (truncated)" : "");
  std::printf("coincidence : %zu patterns in %.3fs%s\n", cp->patterns.size(),
              cp->stats.build_seconds + cp->stats.mine_seconds,
              cp->stats.truncated ? " (truncated)" : "");

  auto closed = FilterClosed(ep->patterns);
  closed = FilterMinIntervals(std::move(closed), 2);
  closed = TopKBySupport(std::move(closed), 5);
  std::printf("top endpoint patterns:\n");
  for (const auto& [pattern, support] : closed) {
    std::printf("  %5.1f%%  %s\n", 100.0 * support / static_cast<double>(db.size()),
                DescribeArrangement(pattern, db.dict()).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();

  PrintBanner("Table 1: practicability on (simulated) real datasets",
              "patterns discovered on domain data are interpretable and the "
              "miner handles heterogeneous regimes (overlap-heavy, "
              "long-duration, dense-state)",
              "ASL-like / library-like / stock-like generators, see "
              "DESIGN.md substitutions");

  {
    AslConfig config;
    config.num_utterances = static_cast<uint32_t>(800 * scale);
    auto db = GenerateAslLike(config);
    TPM_CHECK_OK(db.status());
    Study("ASL-like gesture corpus", *db, 0.10, 8);
  }
  {
    LibraryConfig config;
    config.num_borrowers = static_cast<uint32_t>(2000 * scale);
    auto db = GenerateLibraryLike(config);
    TPM_CHECK_OK(db.status());
    Study("Library lending log", *db, 0.10, 6);
  }
  {
    StockConfig config;
    config.num_stocks = static_cast<uint32_t>(100 * scale);
    config.num_days = 240;
    auto db = GenerateStockLike(config);
    TPM_CHECK_OK(db.status());
    Study("Stock state intervals", *db, 0.30, 6);
  }
  return 0;
}
