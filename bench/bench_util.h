// Shared harness for the figure/table reproduction benchmarks.
//
// Each bench binary regenerates one figure or table of the paper's
// evaluation (see EXPERIMENTS.md for the mapping and the recorded results).
// Output is a self-describing aligned table; a trailing "csv:" block gives
// machine-readable rows for plotting.

#pragma once


#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "miner/miner.h"
#include "obs/metrics.h"
#include "util/guard.h"

namespace tpm {
namespace bench {

/// Outcome of one (algorithm, configuration) cell.
struct Cell {
  std::string algo;
  std::string config;    // x-axis value, e.g. "1.0%" or "D=4k"
  double seconds = 0.0;
  uint64_t patterns = 0;
  size_t memory_bytes = 0;
  uint64_t candidates = 0;
  uint64_t states = 0;
  bool dnf = false;      // truncated or failed before completing
  StopReason stop_reason = StopReason::kNone;  // why, when dnf is true
  obs::MetricsSnapshot metrics;  // per-run registry delta (prune.*, search.*)

  std::string SecondsStr() const;
};

/// Runs an endpoint miner once and captures the cell.
Cell RunEndpoint(EndpointMiner* miner, const IntervalDatabase& db,
                 MinerOptions options, const std::string& config,
                 double budget_seconds);

/// Runs a coincidence miner once and captures the cell.
Cell RunCoincidence(CoincidenceMiner* miner, const IntervalDatabase& db,
                    MinerOptions options, const std::string& config,
                    double budget_seconds);

/// Prints the experiment banner.
void PrintBanner(const std::string& figure, const std::string& claim,
                 const std::string& setup);

/// Prints cells as an aligned table grouped by config, one column block per
/// algorithm, followed by a csv block.
void PrintTable(const std::vector<Cell>& cells);

/// Writes cells (including each cell's metrics snapshot) as a JSON array to
/// BENCH_<name>.json in TPM_BENCH_JSON_DIR (default: current directory).
/// Failures only warn: record files must never break a bench run.
void WriteJsonRecords(const std::string& name, const std::vector<Cell>& cells);

/// Reads TPM_BENCH_SCALE (default 1.0): multiplies dataset sizes so the
/// suite can be shrunk for smoke runs or grown for slower machines.
double BenchScale();

}  // namespace bench
}  // namespace tpm

