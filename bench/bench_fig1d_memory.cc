// Figure 1(d): peak memory vs. minimum support.
//
// Reproduction target: pseudo-projection (P-TPMiner) keeps peak memory well
// below the physical-projection baselines (TPrefixSpan/CTMiner), whose
// per-node postfix copies stack up along the DFS path; the level-wise miner
// pays for whole candidate levels at once.

#include "bench_util.h"
#include "datagen/quest.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace tpm;
using namespace tpm::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();

  QuestConfig config;
  config.num_sequences = static_cast<uint32_t>(2000 * scale);
  config.avg_intervals_per_sequence = 8.0;
  config.num_symbols = 200;
  config.seed = 101;
  auto db = GenerateQuest(config);
  TPM_CHECK_OK(db.status());

  PrintBanner(
      "Figure 1(d): peak logical memory vs minsup",
      "pseudo-projection stays below physical projection at every support",
      config.Name() + ", minsup 2% -> 0.5% (logical bytes tracked by miners)");

  const double kBudget = 60.0;
  std::vector<Cell> cells;
  for (double minsup : {0.02, 0.015, 0.01, 0.0075, 0.005}) {
    MinerOptions options;
    options.min_support = minsup;
    const std::string cfg = StringPrintf("%.2f%%", minsup * 100);
    cells.push_back(
        RunEndpoint(MakePTPMinerE().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunEndpoint(MakeTPrefixSpan().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakePTPMinerC().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunCoincidence(MakeCTMiner().get(), *db, options, cfg, kBudget));
  }

  // Memory-focused table.
  std::printf("%-10s | %-21s | %-21s | %-21s | %-21s\n", "config",
              "P-TPMiner/E", "TPrefixSpan", "P-TPMiner/C", "CTMiner");
  for (size_t i = 0; i < cells.size(); i += 4) {
    std::printf("%-10s | %21s | %21s | %21s | %21s\n", cells[i].config.c_str(),
                HumanBytes(cells[i].memory_bytes).c_str(),
                HumanBytes(cells[i + 1].memory_bytes).c_str(),
                HumanBytes(cells[i + 2].memory_bytes).c_str(),
                HumanBytes(cells[i + 3].memory_bytes).c_str());
  }
  std::printf("\n");
  PrintTable(cells);
  WriteJsonRecords("fig1d_memory", cells);
  return 0;
}
