// Figure 1(a): runtime vs. minimum support, endpoint pattern language.
//
// Reproduction target: P-TPMiner/E is fastest at every support level; the
// gap to TPrefixSpan (physical projection) and especially to the level-wise
// IEMiner-style baseline widens as minsup drops, with the level-wise miner
// timing out first (the papers report it failing to finish at low supports).

#include "bench_util.h"
#include "datagen/quest.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace tpm;
using namespace tpm::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();

  QuestConfig config;
  config.num_sequences = static_cast<uint32_t>(2000 * scale);
  config.avg_intervals_per_sequence = 8.0;
  config.num_symbols = 200;
  config.seed = 101;
  auto db = GenerateQuest(config);
  TPM_CHECK_OK(db.status());

  PrintBanner(
      "Figure 1(a): runtime vs minsup (endpoint patterns)",
      "P-TPMiner beats both baselines; gap widens as minsup drops; the "
      "level-wise miner stops finishing first",
      config.Name() + ", minsup 2% -> 0.5%, budget 60s/run");

  const double kBudget = 60.0;
  std::vector<Cell> cells;
  for (double minsup : {0.02, 0.015, 0.01, 0.0075, 0.005}) {
    MinerOptions options;
    options.min_support = minsup;
    const std::string cfg = StringPrintf("%.2f%%", minsup * 100);
    cells.push_back(
        RunEndpoint(MakePTPMinerE().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunEndpoint(MakeTPrefixSpan().get(), *db, options, cfg, kBudget));
    cells.push_back(
        RunEndpoint(MakeLevelwiseMiner().get(), *db, options, cfg, kBudget));
  }
  PrintTable(cells);
  WriteJsonRecords("fig1a_runtime_minsup", cells);
  return 0;
}
