// Table 2 (ablation): contribution of each pruning technique.
//
// Reproduction target: the paper's claim that "pruning techniques ... further
// reduce the search space". Each row toggles one configuration of
// {pair, postfix, validity} pruning on P-TPMiner and reports runtime and the
// number of occurrence states materialized (the dominant search-space cost). The result set is identical in
// every row (prunings are exact); only cost changes.

#include "bench_util.h"
#include "datagen/quest.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace tpm;
using namespace tpm::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double scale = BenchScale();

  QuestConfig config;
  config.num_sequences = static_cast<uint32_t>(2000 * scale);
  config.avg_intervals_per_sequence = 8.0;
  config.num_symbols = 200;
  config.seed = 101;
  auto db = GenerateQuest(config);
  TPM_CHECK_OK(db.status());

  PrintBanner("Table 2 (ablation): effect of each pruning technique",
              "each pruning reduces work; combined they give the headline "
              "speedup; the mined pattern set never changes",
              config.Name() + ", minsup 0.75%, endpoint + coincidence engines");

  struct Config {
    const char* name;
    bool pair, postfix, validity;
  };
  const Config kConfigs[] = {
      {"none", false, false, false},
      {"pair", true, false, false},
      {"postfix", false, true, false},
      {"validity", false, false, true},
      {"pair+post", true, true, false},
      {"all", true, true, true},
  };

  std::vector<Cell> cells;
  for (const Config& c : kConfigs) {
    MinerOptions options;
    options.min_support = 0.0075;
    options.pair_pruning = c.pair;
    options.postfix_pruning = c.postfix;
    options.validity_pruning = c.validity;
    cells.push_back(
        RunEndpoint(MakePTPMinerE().get(), *db, options, c.name, 120.0));
    cells.push_back(
        RunCoincidence(MakePTPMinerC().get(), *db, options, c.name, 120.0));
  }

  std::printf("%-10s | %-34s | %-34s\n", "", "P-TPMiner/E", "P-TPMiner/C");
  std::printf("%-10s | %9s %11s %12s | %9s %11s %12s\n", "prunings", "time(s)",
              "patterns", "states", "time(s)", "patterns", "states");
  for (size_t i = 0; i < cells.size(); i += 2) {
    std::printf("%-10s | %9s %11llu %12llu | %9s %11llu %12llu\n",
                cells[i].config.c_str(), cells[i].SecondsStr().c_str(),
                static_cast<unsigned long long>(cells[i].patterns),
                static_cast<unsigned long long>(cells[i].states),
                cells[i + 1].SecondsStr().c_str(),
                static_cast<unsigned long long>(cells[i + 1].patterns),
                static_cast<unsigned long long>(cells[i + 1].states));
  }
  std::printf("\n");
  PrintTable(cells);
  WriteJsonRecords("table2_pruning_ablation", cells);
  return 0;
}
