#!/usr/bin/env python3
"""Builds structure-aware seed corpora for the Tier F fuzz harnesses.

Usage:
  tools/fuzz/make_corpus.py --tpm build/tpm --out corpus/

Seeds come from two sources:

  * Valid artifacts emitted by the production writers, driven through the
    `tpm` CLI: TPMB databases (`tpm generate`), TPMC checkpoints
    (`tpm mine --checkpoint-out`), TISD/CSV text, and metrics JSON
    (`tpm mine --metrics-out`).
  * The deterministic corruption generators folded in from
    tests/io/fuzz_test.cc: byte mutations, truncations, and magic-prefixed
    garbage over those valid artifacts (fixed RNG seed, so reruns are
    byte-identical and CI corpus caching works).

Layout: <out>/<harness>/<name>, one directory per harness, matching the
corpus argument each fuzzing/replay binary takes. Harnesses with a leading
mode-selector byte (fuzz_text_loader, fuzz_mine) get it prepended here so
every seed exercises a distinct configuration.

Never overwrites files with identical content (keeps mtimes stable for CI
caches); refreshes anything whose bytes changed.
"""

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import zlib

HARNESSES = (
    "fuzz_binary_format",
    "fuzz_checkpoint",
    "fuzz_checkpoint_roundtrip",
    "fuzz_text_loader",
    "fuzz_json",
    "fuzz_flags",
    "fuzz_mine",
)

# Deterministic: the corpus is a build artifact, not a source of randomness.
RNG_SEED = 0x7F5A2B


def run_tpm(tpm, *args):
    proc = subprocess.run([tpm, *args], capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"tpm {' '.join(args)} failed ({proc.returncode}):\n{proc.stderr}")


# --- TPMC/JSON canonicalization ---------------------------------------------
#
# `tpm mine` embeds wall-clock and RSS readings (elapsed seconds, io.*.ns
# counters, process.* gauges) in its checkpoint and metrics outputs, so two
# otherwise-identical runs emit different bytes. Seeds must be byte-stable
# across reruns (the CI corpus cache keys on that), so both artifacts are
# canonicalized: the volatile values are zeroed and the result re-signed.

VOLATILE_COUNTER_SUFFIXES = (".ns", "_ns")
VOLATILE_GAUGE_PREFIXES = ("process.",)


def _get_varint(buf, pos):
    value = shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value & 0xFFFFFFFFFFFFFFFF, pos
        shift += 7


def _put_varint(out, value):
    while True:
        if value < 0x80:
            out.append(value)
            return
        out.append((value & 0x7F) | 0x80)
        value >>= 7


def canonicalize_tpmc(blob):
    """Zeroes elapsed time and volatile metric values in a TPMC v2 blob.

    Walks the exact serialization layout of src/io/checkpoint.cc, rewriting
    in place (all rewritten fields are varints, so lengths can change), and
    re-signs the CRC-32 trailer. Raises on anything that does not look like
    the checkpoint the production writer just emitted.
    """
    buf = blob[:-4]  # drop the CRC trailer
    out = bytearray(buf[:4])
    assert bytes(buf[:4]) == b"TPMC", "not a TPMC artifact"
    pos = 4

    def copy_varint(pos):
        value, end = _get_varint(buf, pos)
        out.extend(buf[pos:end])
        return value, end

    def copy_string(pos):
        length, pos = copy_varint(pos)
        out.extend(buf[pos:pos + length])
        return pos + length

    version, pos = copy_varint(pos)
    assert version == 2, f"unexpected TPMC version {version}"
    # identity: fingerprint, language, algo, minsup, max_items, max_length,
    # max_window, pruning mask, projection
    _, pos = copy_varint(pos)
    pos = copy_string(pos)
    pos = copy_string(pos)
    for _ in range(5):
        _, pos = copy_varint(pos)
    pos = copy_string(pos)
    # progress: total_units, elapsed (zeroed), budget, completed units + the
    # aligned per-unit pattern counts
    _, pos = copy_varint(pos)
    _, pos = _get_varint(buf, pos)  # elapsed double-bits: drop...
    _put_varint(out, 0)             # ...and write bits(0.0) == 0
    _, pos = copy_varint(pos)
    num_completed, pos = copy_varint(pos)
    for _ in range(2 * num_completed):
        _, pos = copy_varint(pos)
    # patterns / frontier / memo
    for _section in range(3):
        count, pos = copy_varint(pos)
        for _rec in range(count):
            _, pos = copy_varint(pos)  # support
            nitems, pos = copy_varint(pos)
            for _ in range(nitems):
                _, pos = copy_varint(pos)
            noffsets, pos = copy_varint(pos)
            for _ in range(noffsets):
                _, pos = copy_varint(pos)
    # metrics: counters / gauges / histograms
    ncounters, pos = copy_varint(pos)
    for _ in range(ncounters):
        length, pos = copy_varint(pos)
        name = bytes(buf[pos:pos + length]).decode()
        out.extend(buf[pos:pos + length])
        pos += length
        value, pos = _get_varint(buf, pos)
        if name.endswith(VOLATILE_COUNTER_SUFFIXES):
            value = 0
        _put_varint(out, value)
    ngauges, pos = copy_varint(pos)
    for _ in range(ngauges):
        length, pos = copy_varint(pos)
        name = bytes(buf[pos:pos + length]).decode()
        out.extend(buf[pos:pos + length])
        pos += length
        value, pos = _get_varint(buf, pos)  # zigzag; zero encodes as zero
        if name.startswith(VOLATILE_GAUGE_PREFIXES):
            value = 0
        _put_varint(out, value)
    nhistograms, pos = copy_varint(pos)
    for _ in range(nhistograms):
        pos = copy_string(pos)
        nbounds, pos = copy_varint(pos)
        for _ in range(nbounds):
            _, pos = copy_varint(pos)
        for _ in range(nbounds + 1):  # counts: one bucket past the bounds
            _, pos = copy_varint(pos)
        _, pos = copy_varint(pos)  # count
        _, pos = copy_varint(pos)  # sum
    assert pos == len(buf), f"trailing bytes: {pos} != {len(buf)}"
    crc = zlib.crc32(bytes(out))
    out.extend((crc >> (8 * i)) & 0xFF for i in range(4))
    return bytes(out)


def canonicalize_metrics_json(blob):
    """Zeroes volatile values in a metrics JSON blob, re-dumped sorted."""
    doc = json.loads(blob.decode())
    for name in doc.get("counters", {}):
        if name.endswith(VOLATILE_COUNTER_SUFFIXES):
            doc["counters"][name] = 0
    for name in doc.get("gauges", {}):
        if name.startswith(VOLATILE_GAUGE_PREFIXES):
            doc["gauges"][name] = 0
    return json.dumps(doc, sort_keys=True, indent=1).encode() + b"\n"


def generate_artifacts(tpm, scratch):
    """Emits valid TPMB/TISD/CSV/TPMC/JSON artifacts via the CLI writers."""
    artifacts = {"tpmb": [], "tisd": [], "csv": [], "tpmc": [], "json": []}
    specs = [  # (sequences, symbols, seed) — tiny, distinct shapes
        (3, 4, 1),
        (10, 6, 2),
        (25, 12, 3),
    ]
    for n, k, seed in specs:
        base = os.path.join(scratch, f"db-{n}-{k}-{seed}")
        for ext in ("tpmb", "tisd", "csv"):
            path = f"{base}.{ext}"
            run_tpm(tpm, "generate", f"--kind=quest", f"--sequences={n}",
                    f"--symbols={k}", f"--seed={seed}", f"--output={path}")
            with open(path, "rb") as f:
                artifacts[ext].append(f.read())
        ckpt = f"{base}.tpmc"
        metrics = f"{base}.json"
        run_tpm(tpm, "mine", f"{base}.tpmb", "--minsup=0.4",
                "--checkpoint-every=0", f"--checkpoint-out={ckpt}",
                f"--metrics-out={metrics}", f"--output={base}.patterns")
        with open(ckpt, "rb") as f:
            artifacts["tpmc"].append(canonicalize_tpmc(f.read()))
        with open(metrics, "rb") as f:
            artifacts["json"].append(canonicalize_metrics_json(f.read()))
    return artifacts


# --- corruption generators (from tests/io/fuzz_test.cc) ---------------------


def mutated(rng, blob, trials):
    """1-4 random byte mutations per trial."""
    out = []
    for _ in range(trials):
        buf = bytearray(blob)
        for _ in range(1 + rng.randrange(4)):
            buf[rng.randrange(len(buf))] = rng.randrange(256)
        out.append(bytes(buf))
    return out


def truncated(rng, blob, trials):
    return [blob[: rng.randrange(len(blob))] for _ in range(trials)]


def garbage(rng, magic, trials):
    """Random bytes; half the trials get a correct magic prefix."""
    out = []
    for trial in range(trials):
        buf = bytearray(rng.randrange(8, 300))
        for i in range(len(buf)):
            buf[i] = rng.randrange(256)
        if trial % 2 == 0 and len(buf) >= 4:
            buf[:4] = magic
        out.append(bytes(buf))
    return out


def semi_structured_lines(rng, trials):
    """Nearly-valid TISD lines exercising the field validators."""
    fields = ["s1", "A", "5", "-3", "x", "", "999999999999999999999",
              "3.5", "#"]
    out = []
    for _ in range(trials):
        text = ""
        for _ in range(1 + rng.randrange(5)):
            text += " ".join(rng.choice(fields)
                             for _ in range(rng.randrange(6)))
            text += "\n"
        out.append(text.encode())
    return out


def random_text(rng, trials):
    charset = "abAB019 -#\t.,\n"
    return ["".join(rng.choice(charset)
                    for _ in range(rng.randrange(200))).encode()
            for _ in range(trials)]


# --- per-harness corpora ----------------------------------------------------


def binary_corpus(rng, artifacts):
    seeds = list(artifacts["tpmb"])
    for blob in artifacts["tpmb"]:
        seeds += mutated(rng, blob, 6)
        seeds += truncated(rng, blob, 6)
    seeds += garbage(rng, b"TPMB", 10)
    return seeds


def checkpoint_corpus(rng, artifacts):
    seeds = list(artifacts["tpmc"])
    for blob in artifacts["tpmc"]:
        seeds += mutated(rng, blob, 6)
        seeds += truncated(rng, blob, 6)
    seeds += garbage(rng, b"TPMC", 10)
    return seeds


def text_corpus(rng, artifacts):
    # Leading byte = mode selector (dialect / error mode / merge); cover all
    # six for the valid artifacts, then fold in the gtest generators.
    seeds = []
    for mode in range(8):
        for blob in artifacts["tisd" if mode % 2 == 0 else "csv"]:
            seeds.append(bytes([mode]) + blob)
    for body in semi_structured_lines(rng, 20) + random_text(rng, 20):
        seeds.append(bytes([rng.randrange(8)]) + body)
    return seeds


def json_corpus(rng, artifacts):
    handwritten = [
        b"null", b"true", b"[1,2,3]", b'{"a":{"b":[1.5e3,-0.25]}}',
        b'{"counter":18446744073709551615}',
        b'"\\"escaped\\\\"',
        b"[" * 80 + b"]" * 80,
        b'{"deep":' * 16 + b"0" + b"}" * 16,
    ]
    seeds = list(artifacts["json"]) + handwritten
    for blob in artifacts["json"]:
        seeds += mutated(rng, blob, 4)
        seeds += truncated(rng, blob, 4)
    return seeds


def flags_corpus(rng, _artifacts):
    samples = [
        b"--name=x\n--count=7\npositional",
        b"--flag\n--ratio=0.5\n--progress",
        b"--progress=2.5\n--name\nvalue",
        b"--count\n-9223372036854775808",
        b"--unknown=1",
        b"--count=notanumber",
        b"--ratio\n1e308\nrest",
        b"--flag=false\n--flag=true\n--flag=maybe",
    ]
    out = list(samples)
    for blob in samples:
        out += mutated(rng, blob, 3)
    return out


def mine_corpus(rng, artifacts):
    # Leading selector byte (language/prunings/window), then a TPMB body
    # without its CRC trailer — the harness re-signs before parsing.
    seeds = []
    for selector in (0x00, 0x01, 0x0E, 0x1F):
        for blob in artifacts["tpmb"]:
            body = blob[:-4]
            seeds.append(bytes([selector]) + body)
            seeds += [bytes([selector]) + m for m in mutated(rng, body, 2)]
    return seeds


BUILDERS = {
    "fuzz_binary_format": binary_corpus,
    "fuzz_checkpoint": checkpoint_corpus,
    "fuzz_checkpoint_roundtrip": checkpoint_corpus,
    "fuzz_text_loader": text_corpus,
    "fuzz_json": json_corpus,
    "fuzz_flags": flags_corpus,
    "fuzz_mine": mine_corpus,
}


def write_corpus(out_dir, harness, seeds):
    target = os.path.join(out_dir, harness)
    os.makedirs(target, exist_ok=True)
    written = 0
    for i, blob in enumerate(seeds):
        path = os.path.join(target, f"seed-{i:04d}")
        if os.path.exists(path):
            with open(path, "rb") as f:
                if f.read() == blob:
                    continue
        with open(path, "wb") as f:
            f.write(blob)
        written += 1
    return len(seeds), written


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tpm", required=True, help="path to the built tpm CLI")
    parser.add_argument("--out", required=True, help="corpus output directory")
    args = parser.parse_args()

    if not os.path.exists(args.tpm):
        print(f"tpm binary not found: {args.tpm}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as scratch:
        artifacts = generate_artifacts(args.tpm, scratch)

    for harness in HARNESSES:
        # Fresh RNG per harness (crc32, not hash(): PYTHONHASHSEED must not
        # affect corpus bytes): adding one harness never shifts another's
        # seeds.
        rng = random.Random(RNG_SEED ^ zlib.crc32(harness.encode()))
        total, written = write_corpus(args.out, harness,
                                      BUILDERS[harness](rng, artifacts))
        print(f"{harness}: {total} seeds ({written} new/updated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
