#!/usr/bin/env python3
"""Project-specific lint for the tpm codebase.

Enforces invariants generic tools can't (see docs/STATIC_ANALYSIS.md):

  metrics   every metric name used in src/, tools/, bench/ must appear in the
            registry (src/obs/metric_names.h), and every non-dynamic registry
            entry must have at least one call site — a typo'd counter name
            would otherwise silently record (or read) nothing.
  faults    fault sites must be consistent across the canonical list in
            src/util/fault.cc, the call sites (TPM_FAULT_POINT / IoFaultPoint /
            MinerFaultPoint), and docs/ROBUSTNESS.md. (`tpm faults` prints the
            canonical list directly, so it cannot drift separately.)
  headers   every header is self-contained: `#pragma once`, and no <iostream>
            anywhere in src/ library code (headers or .cc) — stream state and
            static-init-order surprises stay confined to tools/tests/benches.
  projection  no copied-projection containers (std::vector<OccState>-style
            per-state heap structures) in src/ outside the legacy copy backend
            in src/core/projection.h — new engine code must stage through
            ProjectionBuilder so projections stay flat and arena-backed.
  locking   Tier D concurrency hygiene (docs/STATIC_ANALYSIS.md): src/ uses
            tpm::Mutex/MutexLock (src/util/sync.h), never raw std::mutex or
            std::lock_guard, so every lock carries thread-safety capability
            annotations (src/util/lockdep.cc is the one other exemption: it
            sits below the sync abstraction and instrumenting its own lock
            would recurse); mutable statics must be std::atomic, thread_local,
            or allowlisted in tools/lint/locking_allowlist.txt with a reason;
            in a class that owns a Mutex, every other data member must be
            TPM_GUARDED_BY, std::atomic, const, or allowlisted.
  determinism  Tier E (docs/STATIC_ANALYSIS.md): no range-iteration over
            std::unordered_{map,set,multimap,multiset} in src/ — hash order
            is nondeterministic across runs, libraries, and platforms, so
            any fold over it poisons emit/merge/serialize paths (the
            parallel-miner byte-identical contract). Sort into a vector
            first, restructure to avoid iterating, or allowlist the variable
            in tools/lint/determinism_allowlist.txt with a sorted-fold
            justification. Pointer-keyed ordered containers, std::less over
            pointers, and operator< over pointers are banned outright:
            they order by allocation address, which ASLR re-rolls each run.
  format    whitespace rules checkable without clang-format: no trailing
            whitespace, no tabs in C++ sources, no CRLF, final newline.
  fuzz-surface  Tier F (docs/STATIC_ANALYSIS.md): every Parse*/Read*/Load*
            entry point declared in src/io/ headers must be registered to a
            fuzz harness in tools/fuzz/surfaces.txt (`<EntryPoint> <harness>
            # reason` lines); stale entries, unknown harnesses, and
            reasonless lines are findings, so no codec ships unfuzzed and
            the registry cannot rot.

Exit code 0 when clean, 1 with one `file:line: [check] message` per finding.

`--self-test` plants one violation of each class in a scratch copy and checks
every one is caught (used by the `lint_selftest` ctest).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

CXX_EXTENSIONS = (".cc", ".h", ".cpp")

# Files whose metric-name literals are checked against the registry. Tests
# are excluded: they exercise the registry machinery with ad-hoc names.
METRIC_SCAN_DIRS = ("src", "tools", "bench")
METRIC_CALL_RE = re.compile(
    r"(?:GetCounter|GetGauge|GetHistogram|CounterValue|FindCounter|FindGauge"
    r"|FindHistogram|FindMetric)\(\s*\"([^\"]+)\"")
REGISTRY_PATH = os.path.join("src", "obs", "metric_names.h")
REGISTRY_ENTRY_RE = re.compile(r"^\s*\"([^\"]+)\",\s*(//\s*dynamic\b.*)?$")

FAULT_LIST_PATH = os.path.join("src", "util", "fault.cc")
FAULT_DOC_PATH = os.path.join("docs", "ROBUSTNESS.md")
FAULT_POINT_RE = re.compile(
    r"(?:TPM_FAULT_POINT|IoFaultPoint|MinerFaultPoint|ScopedFault)\(\s*\"([^\"]+)\"")


def iter_files(root, subdirs, extensions):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(extensions):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, check, path, line, message):
        self.items.append((check, path, line, message))

    def report(self):
        for check, path, line, message in self.items:
            where = f"{path}:{line}" if line else path
            print(f"{where}: [{check}] {message}")
        return 1 if self.items else 0


# --------------------------------------------------------------------------
# metrics: call-site names <-> registry header
# --------------------------------------------------------------------------

def parse_metric_registry(root, findings):
    """Returns (all_names, dynamic_names) from the registry header."""
    path = os.path.join(root, REGISTRY_PATH)
    names, dynamic = set(), set()
    try:
        text = open(path, encoding="utf-8").read()
    except OSError:
        findings.add("metrics", REGISTRY_PATH, 0, "registry header missing")
        return names, dynamic
    in_table = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if "lint: metric-registry-begin" in line:
            in_table = True
            continue
        if "lint: metric-registry-end" in line:
            in_table = False
            continue
        if not in_table:
            continue
        m = REGISTRY_ENTRY_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        if name in names:
            findings.add("metrics", REGISTRY_PATH, lineno,
                         f"duplicate registry entry '{name}'")
        names.add(name)
        if m.group(2):
            dynamic.add(name)
    if not names:
        findings.add("metrics", REGISTRY_PATH, 0,
                     "no entries between the lint markers")
    return names, dynamic


def check_metrics(root, findings):
    registered, dynamic = parse_metric_registry(root, findings)
    used = {}
    for path in iter_files(root, METRIC_SCAN_DIRS, CXX_EXTENSIONS):
        rel = relpath(root, path)
        if rel == REGISTRY_PATH:
            continue
        for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
            for m in METRIC_CALL_RE.finditer(line):
                name = m.group(1)
                used.setdefault(name, (rel, lineno))
                if name not in registered:
                    findings.add(
                        "metrics", rel, lineno,
                        f"metric name '{name}' is not in {REGISTRY_PATH}; "
                        "typo, or add it to the registry")
    for name in sorted(registered - set(used) - dynamic):
        findings.add(
            "metrics", REGISTRY_PATH, 0,
            f"registry entry '{name}' has no call site in "
            f"{'/'.join(METRIC_SCAN_DIRS)} — dead entry, or tag it `// dynamic`")


# --------------------------------------------------------------------------
# faults: canonical list <-> call sites <-> docs
# --------------------------------------------------------------------------

def parse_fault_sites(root, findings):
    """Extracts the canonical site list from the kSites table in fault.cc."""
    path = os.path.join(root, FAULT_LIST_PATH)
    sites = {}
    try:
        text = open(path, encoding="utf-8").read()
    except OSError:
        findings.add("faults", FAULT_LIST_PATH, 0, "canonical site list missing")
        return sites
    m = re.search(r"kSites\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not m:
        findings.add("faults", FAULT_LIST_PATH, 0,
                     "could not locate the kSites table")
        return sites
    offset = text[:m.start()].count("\n")
    for i, line in enumerate(m.group(1).splitlines()):
        entry = re.search(r"\"([^\"]+)\"", line)
        if entry:
            sites[entry.group(1)] = offset + i + 1
    return sites


def check_faults(root, findings):
    sites = parse_fault_sites(root, findings)
    used = {}
    for path in iter_files(root, ("src", "tools"), CXX_EXTENSIONS):
        rel = relpath(root, path)
        for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
            for m in FAULT_POINT_RE.finditer(line):
                site = m.group(1)
                used.setdefault(site, (rel, lineno))
                if site not in sites:
                    findings.add(
                        "faults", rel, lineno,
                        f"fault site '{site}' is not registered in "
                        f"{FAULT_LIST_PATH}; it would never fire")
    for site in sorted(set(sites) - set(used)):
        findings.add(
            "faults", FAULT_LIST_PATH, sites[site],
            f"registered fault site '{site}' has no injection point in "
            "src/ or tools/")
    try:
        doc = open(os.path.join(root, FAULT_DOC_PATH), encoding="utf-8").read()
    except OSError:
        findings.add("faults", FAULT_DOC_PATH, 0, "robustness doc missing")
        return
    for site in sorted(sites):
        if f"`{site}`" not in doc and f"{site}:" not in doc:
            findings.add(
                "faults", FAULT_DOC_PATH, 0,
                f"fault site '{site}' is not documented (expected `{site}`)")


# --------------------------------------------------------------------------
# headers: self-containment and stream hygiene
# --------------------------------------------------------------------------

def check_headers(root, findings):
    for path in iter_files(root, ("src", "tools", "bench", "tests"), (".h",)):
        rel = relpath(root, path)
        text = open(path, encoding="utf-8").read()
        if "#pragma once" not in text:
            findings.add("headers", rel, 1, "missing #pragma once")
    for path in iter_files(root, ("src",), CXX_EXTENSIONS):
        rel = relpath(root, path)
        for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
            if re.match(r"\s*#\s*include\s*<iostream>", line):
                findings.add(
                    "headers", rel, lineno,
                    "<iostream> in library code; use <ostream>/<iosfwd> and "
                    "keep concrete streams in tools/tests/benches")


def check_header_compiles(root, findings, compiler="g++"):
    """Optional deep self-containment check: each src/ header must compile
    alone. Run by the `lint` CMake target, not the quick ctest."""
    for path in iter_files(root, ("src",), (".h",)):
        rel = relpath(root, path)
        probe = f'#include "{os.path.relpath(path, os.path.join(root, "src"))}"\n'
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cc", delete=False) as tmp:
            tmp.write(probe)
            probe_path = tmp.name
        try:
            result = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(root, "src"), probe_path],
                capture_output=True, text=True)
            if result.returncode != 0:
                findings.add("headers", rel, 1,
                             "not self-contained: " +
                             result.stderr.strip().splitlines()[0])
        finally:
            os.unlink(probe_path)


# --------------------------------------------------------------------------
# projection: no copied projections outside the legacy backend
# --------------------------------------------------------------------------

# The legacy copy backend (deprecated, kept as the --projection=copy A/B
# baseline) is the only place allowed to hold per-state heap containers.
PROJECTION_ALLOWED = (os.path.join("src", "core", "projection.h"),)
PROJECTION_RE = re.compile(
    r"std::(?:vector|deque|list)<\s*(OccState|SeqProj|ProjectedDb|CopyState"
    r"|CopySeq)\b")


def check_projection(root, findings):
    for path in iter_files(root, ("src",), CXX_EXTENSIONS):
        rel = relpath(root, path)
        if rel in PROJECTION_ALLOWED:
            continue
        for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
            m = PROJECTION_RE.search(line)
            if m:
                findings.add(
                    "projection", rel, lineno,
                    f"copied-projection container holding '{m.group(1)}' "
                    "outside the legacy copy backend; stage through "
                    "ProjectionBuilder (src/core/projection.h) so projections "
                    "stay flat and arena-backed")


# --------------------------------------------------------------------------
# locking: Tier D concurrency hygiene (see docs/STATIC_ANALYSIS.md)
# --------------------------------------------------------------------------

LOCKING_ALLOWLIST_PATH = os.path.join("tools", "lint", "locking_allowlist.txt")
SYNC_HEADER = os.path.join("src", "util", "sync.h")
# Runtime lockdep guards its own state with a raw std::mutex on purpose:
# instrumenting it would recurse straight back into the lockdep hooks.
LOCK_PRIMITIVE_FILES = (SYNC_HEADER, os.path.join("src", "util", "lockdep.cc"))

# Raw standard-library lock primitives carry no capability annotations, so
# Clang's thread-safety analysis cannot see them. util/sync.h wraps them.
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex)>")

STATIC_DECL_RE = re.compile(r"^\s*static\s+(.+)$")
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(.+?)\s+([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?"
    r"\s*(?:=.*|\{.*\})?$", re.DOTALL)
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:TPM_\w+\((?:[^()]|\([^()]*\))*\)\s+)?"
    r"([A-Za-z_]\w*)")
ANNOTATION_RE = re.compile(r"TPM_\w+\((?:[^()]|\([^()]*\))*\)")
MEMBER_SKIP_PREFIXES = ("public", "private", "protected", "struct ", "class ",
                        "enum ", "union ", "template", "using ", "typedef ",
                        "friend ", "static ", "#")


def strip_line_comment(line):
    return line.split("//", 1)[0]


def load_reasoned_allowlist(root, rel_path, check, findings):
    """Returns {key: lineno} from a `path:identifier  # reason` allowlist;
    reasonless and duplicate entries are findings, so the list cannot rot."""
    path = os.path.join(root, rel_path)
    entries = {}
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError:
        return entries  # empty allowlist is fine; nothing is exempt
    for lineno, line in enumerate(lines, 1):
        entry, _, reason = line.partition("#")
        entry = entry.strip()
        if not entry:
            continue
        if not reason.strip():
            findings.add(check, rel_path, lineno,
                         f"allowlist entry '{entry}' has no `# reason` comment")
        if entry in entries:
            findings.add(check, rel_path, lineno,
                         f"duplicate allowlist entry '{entry}'")
        entries[entry] = lineno
    return entries


def load_locking_allowlist(root, findings):
    return load_reasoned_allowlist(root, LOCKING_ALLOWLIST_PATH, "locking",
                                   findings)


def blank_nested_braces(body):
    """Replaces everything inside nested {...} regions with spaces (newlines
    kept), leaving only the class's own declarations visible."""
    out = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
            out.append(" ")
        elif ch == "}":
            depth -= 1
            # Close of a nested region ends the statement, so an inline
            # function body doesn't glue onto the next member declaration.
            out.append(";" if depth == 0 else " ")
        elif depth > 0 and ch != "\n":
            out.append(" ")
        else:
            out.append(ch)
    return "".join(out)


def iter_class_bodies(text):
    """Yields (class_name, body_start_line, depth1_body) for every class or
    struct definition, including nested ones (each seen independently)."""
    for m in CLASS_HEAD_RE.finditer(text):
        pos = m.end()
        # Find the opening brace; a `;` or `(` first means forward
        # declaration or constructor-ish false positive.
        while pos < len(text) and text[pos] not in "{;(":
            pos += 1
        if pos >= len(text) or text[pos] != "{":
            continue
        depth = 0
        end = pos
        while end < len(text):
            if text[end] == "{":
                depth += 1
            elif text[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        body = text[pos + 1:end]
        yield (m.group(1), text[:pos + 1].count("\n") + 1,
               blank_nested_braces(body))


def iter_statements(body, start_line):
    """Splits a depth-1 class body into `;`-terminated statements, yielding
    (lineno_of_first_token, statement_text)."""
    line = start_line
    stmt, stmt_line = [], None
    for ch in body:
        if ch == "\n":
            line += 1
        if ch == ";":
            yield (stmt_line if stmt_line is not None else line,
                   "".join(stmt).strip())
            stmt, stmt_line = [], None
            continue
        stmt.append(ch)
        if stmt_line is None and not ch.isspace():
            stmt_line = line


def check_locking_members(rel, class_name, start_line, body, allow,
                          used_allow, findings):
    statements = []
    mutex_members = set()
    for lineno, raw in iter_statements(body, start_line):
        stmt = " ".join(strip_line_comment(part)
                        for part in raw.splitlines()).strip()
        # Drop access labels glued to the statement by the `;` split.
        stmt = re.sub(r"^(?:public|private|protected)\s*:\s*", "", stmt)
        statements.append((lineno, stmt))
        m = re.match(r"^(?:mutable\s+)?Mutex\s+(\w+)$", stmt)
        if m:
            mutex_members.add(m.group(1))
    if not mutex_members:
        return
    for lineno, stmt in statements:
        if not stmt or stmt.startswith(MEMBER_SKIP_PREFIXES):
            continue
        guarded = "TPM_GUARDED_BY" in stmt or "TPM_PT_GUARDED_BY" in stmt
        stmt = ANNOTATION_RE.sub("", stmt).strip()
        if not stmt or "(" in stmt:  # functions, ctors, deleted ops
            continue
        m = MEMBER_RE.match(stmt)
        if not m:
            continue
        type_str, name = m.group(1), m.group(2)
        if name in mutex_members or guarded:
            continue
        if ("std::atomic" in type_str or "constexpr" in type_str or
                re.search(r"\bconst\b", type_str)):
            continue
        key = f"{rel}:{class_name}::{name}"
        if key in allow:
            used_allow.add(key)
            continue
        findings.add(
            "locking", rel, lineno,
            f"member '{class_name}::{name}' of a Mutex-owning class is not "
            "TPM_GUARDED_BY, std::atomic, or const; annotate it (or allowlist "
            f"it in {LOCKING_ALLOWLIST_PATH} with a reason)")


def check_locking_statics(rel, lines, allow, used_allow, findings):
    for lineno, line in enumerate(lines, 1):
        code = strip_line_comment(line)
        m = STATIC_DECL_RE.match(code)
        if not m:
            continue
        decl = m.group(1)
        if (re.match(r"(?:const|constexpr|thread_local)\b", decl) or
                "std::atomic" in decl or "thread_local" in decl):
            continue
        # A `(` before any `=`/`;`/`{` means a function declaration.
        head = re.split(r"[=;{]", decl, 1)[0]
        if "(" in head:
            continue
        tokens = re.findall(r"[A-Za-z_]\w*", head)
        if len(tokens) < 2:  # `static` + type only: not a variable decl
            continue
        name = tokens[-1]
        key = f"{rel}:{name}"
        if key in allow:
            used_allow.add(key)
            continue
        findings.add(
            "locking", rel, lineno,
            f"mutable static '{name}' is not std::atomic, thread_local, or "
            f"const; make it one of those (or allowlist it in "
            f"{LOCKING_ALLOWLIST_PATH} with a reason)")


def check_locking(root, findings):
    allow = load_locking_allowlist(root, findings)
    used_allow = set()
    for path in iter_files(root, ("src",), CXX_EXTENSIONS):
        rel = relpath(root, path)
        text = open(path, encoding="utf-8").read()
        lines = text.splitlines()
        if rel not in LOCK_PRIMITIVE_FILES:
            for lineno, line in enumerate(lines, 1):
                m = RAW_MUTEX_RE.search(strip_line_comment(line))
                if m:
                    findings.add(
                        "locking", rel, lineno,
                        f"raw '{m.group(0)}' carries no thread-safety "
                        "annotations; use tpm::Mutex / tpm::MutexLock from "
                        f"{SYNC_HEADER}")
        check_locking_statics(rel, lines, allow, used_allow, findings)
        for class_name, start_line, body in iter_class_bodies(text):
            check_locking_members(rel, class_name, start_line, body, allow,
                                  used_allow, findings)
    for key in sorted(set(allow) - used_allow):
        findings.add("locking", LOCKING_ALLOWLIST_PATH, allow[key],
                     f"allowlist entry '{key}' matches nothing; remove it")


# --------------------------------------------------------------------------
# determinism: no nondeterministically-ordered folds (Tier E)
# --------------------------------------------------------------------------

DETERMINISM_ALLOWLIST_PATH = os.path.join("tools", "lint",
                                          "determinism_allowlist.txt")
UNORDERED_TYPE_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<")
# Range-for headers only: a classic for(;;) contains semicolons and is
# excluded, and range expressions with calls/parens name temporaries, not
# the tracked variables.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*):([^;()]*)\)")
PTR_KEY_RE = re.compile(
    r"std::(?:map|set|multimap|multiset)<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*")
PTR_LESS_RE = re.compile(r"std::less<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*")
PTR_CMP_RE = re.compile(
    r"\boperator<\s*\(\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*")


def unordered_decl_names(text):
    """Names declared with a std::unordered_* type anywhere in `text`
    (locals, members, parameters): the identifier right after the closing
    template bracket, skipping cv/ref/pointer tokens. An identifier followed
    by `(` is a function returning the container, not a variable."""
    names = set()
    for m in UNORDERED_TYPE_RE.finditer(text):
        i = m.end()
        depth = 1
        while i < len(text) and depth:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        dm = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_]\w*)\s*(\S)?",
                      text[i:], re.DOTALL)
        if dm and dm.group(2) != "(":
            names.add(dm.group(1))
    return names


def check_determinism(root, findings):
    allow = load_reasoned_allowlist(root, DETERMINISM_ALLOWLIST_PATH,
                                    "determinism", findings)
    used_allow = set()
    for path in iter_files(root, ("src",), CXX_EXTENSIONS):
        rel = relpath(root, path)
        code_lines = [strip_line_comment(l)
                      for l in open(path, encoding="utf-8").read().splitlines()]
        unordered = unordered_decl_names("\n".join(code_lines))
        for lineno, line in enumerate(code_lines, 1):
            for fm in RANGE_FOR_RE.finditer(line):
                ids = re.findall(r"[A-Za-z_]\w*", fm.group(2))
                if not ids or ids[-1] not in unordered:
                    continue
                name = ids[-1]
                key = f"{rel}:{name}"
                if key in allow:
                    used_allow.add(key)
                    continue
                findings.add(
                    "determinism", rel, lineno,
                    f"range-iteration over unordered container '{name}': "
                    "hash order is nondeterministic, so any "
                    "emit/merge/serialize fold over it is too; sort into a "
                    "vector first, restructure to avoid iterating, or "
                    f"allowlist '{key}' in {DETERMINISM_ALLOWLIST_PATH} with "
                    "a sorted-fold justification")
            pm = PTR_KEY_RE.search(line)
            if pm:
                findings.add(
                    "determinism", rel, lineno,
                    f"pointer-keyed ordered container '{pm.group(0)}…>': "
                    "iteration order follows allocation addresses, which "
                    "ASLR re-rolls every run; key by a stable id instead")
            lm = PTR_LESS_RE.search(line)
            if lm:
                findings.add(
                    "determinism", rel, lineno,
                    f"'{lm.group(0)}…>' orders by allocation address, which "
                    "ASLR re-rolls every run; compare stable ids or values "
                    "instead")
            cm = PTR_CMP_RE.search(line)
            if cm:
                findings.add(
                    "determinism", rel, lineno,
                    "operator< over raw pointers orders by allocation "
                    "address, which ASLR re-rolls every run; compare stable "
                    "ids or values instead")
    for key in sorted(set(allow) - used_allow):
        findings.add("determinism", DETERMINISM_ALLOWLIST_PATH, allow[key],
                     f"allowlist entry '{key}' matches nothing; remove it")


# --------------------------------------------------------------------------
# format: whitespace rules that need no clang-format
# --------------------------------------------------------------------------

FORMAT_SCAN = ("src", "tools", "bench", "tests", "examples", "docs", "cmake")


def check_format(root, findings):
    paths = list(iter_files(root, FORMAT_SCAN,
                            CXX_EXTENSIONS + (".py", ".md", ".cmake", ".txt")))
    for name in sorted(os.listdir(root)):
        if name.endswith((".md", ".txt")) and \
                os.path.isfile(os.path.join(root, name)):
            paths.append(os.path.join(root, name))
    for path in paths:
        rel = relpath(root, path)
        data = open(path, "rb").read()
        if b"\r\n" in data:
            findings.add("format", rel, 1, "CRLF line endings")
        if data and not data.endswith(b"\n"):
            findings.add("format", rel, data.count(b"\n") + 1,
                         "missing final newline")
        for lineno, line in enumerate(data.split(b"\n"), 1):
            if line != line.rstrip():
                findings.add("format", rel, lineno, "trailing whitespace")
            if rel.endswith(CXX_EXTENSIONS) and b"\t" in line:
                findings.add("format", rel, lineno, "tab in C++ source")


# --------------------------------------------------------------------------
# fuzz-surface: every src/io/ parser entry point has a registered harness
# --------------------------------------------------------------------------

FUZZ_SURFACES_PATH = os.path.join("tools", "fuzz", "surfaces.txt")
FUZZ_IO_HEADERS = os.path.join("src", "io")
# A public decode surface: a Result<...>- or Status-returning free function
# whose name starts with Parse/Read/Load (the naming convention src/io
# follows for anything that consumes untrusted bytes).
FUZZ_SURFACE_RE = re.compile(
    r"\b(?:Result<[^;{}]*>|Status)\s+((?:Parse|Read|Load)[A-Z]\w*)\s*\(")


def check_fuzz_surface(root, findings):
    allow = load_reasoned_allowlist(root, FUZZ_SURFACES_PATH, "fuzz-surface",
                                    findings)
    registered = {}  # surface name -> first registry line
    for key, lineno in allow.items():
        parts = key.split()
        if len(parts) != 2:
            findings.add("fuzz-surface", FUZZ_SURFACES_PATH, lineno,
                         f"malformed entry '{key}': want "
                         "'<EntryPoint> <harness>  # reason'")
            continue
        surface, harness = parts
        if not os.path.isfile(os.path.join(root, "fuzz", harness + ".cc")):
            findings.add("fuzz-surface", FUZZ_SURFACES_PATH, lineno,
                         f"entry '{surface}' names harness '{harness}' but "
                         f"fuzz/{harness}.cc does not exist")
        registered.setdefault(surface, lineno)

    declared = {}  # surface name -> "file:line" of the declaration
    for path in iter_files(root, (FUZZ_IO_HEADERS,), (".h",)):
        rel = relpath(root, path)
        lines = open(path, encoding="utf-8").read().splitlines()
        for lineno, line in enumerate(lines, 1):
            m = FUZZ_SURFACE_RE.search(strip_line_comment(line))
            if m:
                declared.setdefault(m.group(1), f"{rel}:{lineno}")
    for surface in sorted(set(declared) - set(registered)):
        rel, _, lineno = declared[surface].rpartition(":")
        findings.add(
            "fuzz-surface", rel, int(lineno),
            f"entry point '{surface}' has no fuzz harness registered in "
            f"{FUZZ_SURFACES_PATH}; add '<{surface}> <fuzz_harness>  "
            "# reason' (and a harness under fuzz/ if none covers it)")
    for surface in sorted(set(registered) - set(declared)):
        findings.add(
            "fuzz-surface", FUZZ_SURFACES_PATH, registered[surface],
            f"stale entry '{surface}': no such entry point is declared in "
            f"{FUZZ_IO_HEADERS} headers; remove the line")


CHECKS = {
    "metrics": check_metrics,
    "faults": check_faults,
    "headers": check_headers,
    "projection": check_projection,
    "locking": check_locking,
    "determinism": check_determinism,
    "format": check_format,
    "fuzz-surface": check_fuzz_surface,
}


def run_checks(root, only=None, compile_headers=False):
    findings = Findings()
    for name, check in CHECKS.items():
        if only and name not in only:
            continue
        check(root, findings)
    if compile_headers and (not only or "headers" in only):
        check_header_compiles(root, findings)
    return findings


# --------------------------------------------------------------------------
# self-test: plant one violation per class, assert each is caught
# --------------------------------------------------------------------------

def self_test(root):
    failures = []

    def expect(label, planted_root, check, needle):
        findings = run_checks(planted_root, only=[check])
        hits = [f for f in findings.items if needle in f[3] or needle in f[1]]
        if not hits:
            failures.append(f"{label}: linter missed the planted violation")

    def plant(label, mutate, check, needle):
        scratch = tempfile.mkdtemp(prefix="tpm-lint-selftest-")
        try:
            for sub in ("src", "tools", "bench", "tests", "docs", "cmake",
                        "examples", "fuzz"):
                src = os.path.join(root, sub)
                if os.path.isdir(src):
                    shutil.copytree(src, os.path.join(scratch, sub))
            mutate(scratch)
            expect(label, scratch, check, needle)
        finally:
            shutil.rmtree(scratch)

    # Clean tree first: every check must pass on the real repo.
    clean = run_checks(root)
    if clean.items:
        clean.report()
        print("self-test: repository is not clean; fix the findings above")
        return 1

    def typo_counter(scratch):
        path = os.path.join(scratch, "src", "io", "loader.cc")
        text = open(path).read().replace(
            'GetCounter("io.load.calls"', 'GetCounter("io.load.callz"', 1)
        open(path, "w").write(text)

    plant("typo'd counter name", typo_counter, "metrics", "io.load.callz")

    def drift_fault_site(scratch):
        path = os.path.join(scratch, "src", "io", "atomic_write.cc")
        text = open(path).read().replace(
            'IoFaultPoint("io.fsync")', 'IoFaultPoint("io.fsyncc")', 1)
        open(path, "w").write(text)

    plant("drifted fault site", drift_fault_site, "faults", "io.fsyncc")

    def undocumented_fault_site(scratch):
        path = os.path.join(scratch, "docs", "ROBUSTNESS.md")
        text = open(path).read().replace("`io.rename`", "`io.renamed`")
        text = text.replace("io.rename:", "io.renamed:")
        open(path, "w").write(text)

    plant("undocumented fault site", undocumented_fault_site, "faults",
          "io.rename")

    def strip_pragma(scratch):
        path = os.path.join(scratch, "src", "core", "types.h")
        text = open(path).read().replace("#pragma once", "")
        open(path, "w").write(text)

    plant("header without #pragma once", strip_pragma, "headers",
          "missing #pragma once")

    def add_iostream(scratch):
        path = os.path.join(scratch, "src", "core", "interval.h")
        text = open(path).read().replace(
            "#include <string>", "#include <iostream>\n#include <string>", 1)
        open(path, "w").write(text)

    plant("<iostream> in library code", add_iostream, "headers", "<iostream>")

    def trailing_ws(scratch):
        path = os.path.join(scratch, "src", "core", "types.h")
        with open(path, "a") as f:
            f.write("// drift   \n")

    plant("formatting drift", trailing_ws, "format", "trailing whitespace")

    def dead_registry_entry(scratch):
        path = os.path.join(scratch, "src", "obs", "metric_names.h")
        text = open(path).read().replace(
            '    "cooc.frequent_symbols",',
            '    "cooc.frequent_symbols",\n    "zzz.never_used",', 1)
        open(path, "w").write(text)

    plant("dead registry entry", dead_registry_entry, "metrics",
          "zzz.never_used")

    def typo_domain_counter(scratch):
        path = os.path.join(scratch, "src", "obs", "progress.cc")
        text = open(path).read().replace(
            'GetCounter("progress.snapshots"',
            'GetCounter("progress.snapshotz"', 1)
        open(path, "w").write(text)

    plant("typo'd StatsDomain-charged counter", typo_domain_counter,
          "metrics", "progress.snapshotz")

    def copied_projection(scratch):
        path = os.path.join(scratch, "src", "miner", "growth_engine.h")
        text = open(path).read().replace(
            "namespace tpm {",
            "namespace tpm {\nstruct OccState;\n"
            "using LegacyProjection = std::vector<OccState>;", 1)
        open(path, "w").write(text)

    plant("copied projection outside the legacy backend", copied_projection,
          "projection", "OccState")

    def unguarded_static(scratch):
        path = os.path.join(scratch, "src", "core", "types.h")
        with open(path, "a") as f:
            f.write("static int g_unguarded_total = 0;\n")

    plant("mutable static without atomic/guard", unguarded_static, "locking",
          "g_unguarded_total")

    def unordered_fold(scratch):
        path = os.path.join(scratch, "src", "core", "pattern.cc")
        with open(path, "a") as f:
            f.write("\nstatic int SumOpenz("
                    "const std::unordered_map<int, int>& openz) {\n"
                    "  int total = 0;\n"
                    "  for (const auto& kv : openz) total += kv.second;\n"
                    "  return total;\n"
                    "}\n")

    plant("range-iteration over unordered container", unordered_fold,
          "determinism", "openz")

    def pointer_keyed_map(scratch):
        path = os.path.join(scratch, "src", "core", "types.h")
        with open(path, "a") as f:
            f.write("using BadIntervalIndex = std::map<const Interval*, int>;\n")

    plant("pointer-keyed ordered container", pointer_keyed_map, "determinism",
          "pointer-keyed")

    def pointer_less(scratch):
        path = os.path.join(scratch, "src", "core", "types.h")
        with open(path, "a") as f:
            f.write("using BadOrder = std::less<const Interval*>;\n")

    plant("std::less over raw pointers", pointer_less, "determinism",
          "std::less")

    def pointer_compare(scratch):
        path = os.path.join(scratch, "src", "core", "types.h")
        with open(path, "a") as f:
            f.write("bool operator<(const Interval* a, const Interval* b);\n")

    plant("operator< over raw pointers", pointer_compare, "determinism",
          "operator< over raw pointers")

    def unregistered_surface(scratch):
        path = os.path.join(scratch, "src", "io", "binary_format.h")
        with open(path, "a") as f:
            f.write("namespace tpm { Result<IntervalDatabase> "
                    "ParseEvilBuffer(const std::string& buffer); }\n")

    plant("parser entry point without a fuzz harness", unregistered_surface,
          "fuzz-surface", "ParseEvilBuffer")

    def stale_surface_entry(scratch):
        path = os.path.join(scratch, "tools", "fuzz", "surfaces.txt")
        with open(path, "a") as f:
            f.write("ParseNothing fuzz_json  # decoder removed long ago\n")

    plant("stale fuzz-surface registry entry", stale_surface_entry,
          "fuzz-surface", "ParseNothing")

    if failures:
        for f in failures:
            print(f"FAIL {f}")
        return 1
    print("lint self-test OK: 16 planted violations, 16 caught, clean tree clean")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--only", action="append", choices=sorted(CHECKS),
                        help="run only these checks (repeatable)")
    parser.add_argument("--compile-headers", action="store_true",
                        help="also compile every src/ header standalone")
    parser.add_argument("--self-test", action="store_true",
                        help="plant violations in a scratch copy and verify "
                             "each is caught")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root)
    findings = run_checks(root, only=args.only,
                          compile_headers=args.compile_headers)
    code = findings.report()
    if code == 0:
        ran = ", ".join(args.only) if args.only else ", ".join(sorted(CHECKS))
        print(f"project lint OK ({ran})")
    return code


if __name__ == "__main__":
    sys.exit(main())
