#!/usr/bin/env python3
"""Tier F coverage gate over an llvm-cov JSON export.

Consumes the output of

    llvm-cov export -summary-only -instr-profile=... <binaries...>

and enforces per-target line-coverage floors on the untrusted decoding
surfaces the fuzz harnesses drive (see tools/fuzz/surfaces.txt):

    src/io/            aggregate line coverage >= 90%
    src/util/json.cc   line coverage           >= 90%

Floors are aggregates over matching files, so adding a file to src/io/
cannot silently dodge the gate. The full per-file table is emitted as
GitHub-flavoured markdown (use --markdown-out "$GITHUB_STEP_SUMMARY" in CI)
together with the repo-wide totals; the process exits nonzero when any
floor is missed so the CI job fails loudly.

Usage:
    llvm-cov export -summary-only ... > coverage.json
    python3 tools/coverage/check_coverage.py --json coverage.json \
        --root "$PWD" [--markdown-out summary.md]
"""

import argparse
import json
import os
import sys

# (label, matcher, minimum line-coverage percent). A matcher ending in "/"
# aggregates every file under that directory; otherwise it must equal the
# repo-relative path exactly.
FLOORS = [
    ("src/io/", "src/io/", 90.0),
    ("src/util/json.cc", "src/util/json.cc", 90.0),
]


def rel_path(filename, root):
    """Maps an absolute filename from the export to a repo-relative one."""
    root = os.path.abspath(root)
    absolute = os.path.abspath(filename)
    if absolute.startswith(root + os.sep):
        return os.path.relpath(absolute, root).replace(os.sep, "/")
    return filename.replace(os.sep, "/")


def matches(rel, matcher):
    if matcher.endswith("/"):
        return rel.startswith(matcher)
    return rel == matcher


def line_summary(entry):
    lines = entry["summary"]["lines"]
    return int(lines["count"]), int(lines["covered"])


def percent(count, covered):
    return 100.0 if count == 0 else 100.0 * covered / count


def build_report(export, root):
    """Returns (floor_rows, file_rows, totals) from the parsed export."""
    files = []
    for data in export["data"]:
        for entry in data["files"]:
            count, covered = line_summary(entry)
            files.append((rel_path(entry["filename"], root), count, covered))
    files.sort()

    floor_rows = []
    for label, matcher, minimum in FLOORS:
        count = covered = nfiles = 0
        for rel, c, v in files:
            if matches(rel, matcher):
                count += c
                covered += v
                nfiles += 1
        pct = percent(count, covered)
        floor_rows.append(
            {
                "label": label,
                "files": nfiles,
                "count": count,
                "covered": covered,
                "percent": pct,
                "minimum": minimum,
                "ok": nfiles > 0 and count > 0 and pct >= minimum,
            }
        )

    total_count = sum(c for _, c, _ in files)
    total_covered = sum(v for _, _, v in files)
    totals = (total_count, total_covered, percent(total_count, total_covered))
    return floor_rows, files, totals


def render_markdown(floor_rows, files, totals):
    out = ["## Tier F coverage gate", ""]
    out.append("| target | files | lines | covered | coverage | floor | status |")
    out.append("|---|---:|---:|---:|---:|---:|---|")
    for row in floor_rows:
        out.append(
            "| `%s` | %d | %d | %d | %.2f%% | %.0f%% | %s |"
            % (
                row["label"],
                row["files"],
                row["count"],
                row["covered"],
                row["percent"],
                row["minimum"],
                "pass" if row["ok"] else "**FAIL**",
            )
        )
    count, covered, pct = totals
    out.append("")
    out.append(
        "Repo-wide line coverage: **%.2f%%** (%d of %d lines)."
        % (pct, covered, count)
    )
    out.append("")
    out.append("<details><summary>Per-file line coverage</summary>")
    out.append("")
    out.append("| file | lines | covered | coverage |")
    out.append("|---|---:|---:|---:|")
    for rel, c, v in files:
        out.append("| `%s` | %d | %d | %.2f%% |" % (rel, c, v, percent(c, v)))
    out.append("")
    out.append("</details>")
    return "\n".join(out) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", required=True,
                        help="llvm-cov export -summary-only output")
    parser.add_argument("--root", default=".",
                        help="repo root; export filenames are made relative to it")
    parser.add_argument("--markdown-out", default=None,
                        help="also append the markdown report to this file")
    args = parser.parse_args()

    with open(args.json, "r", encoding="utf-8") as f:
        export = json.load(f)
    if export.get("type") != "llvm.coverage.json.export":
        print("error: %s is not an llvm-cov JSON export" % args.json,
              file=sys.stderr)
        return 2

    floor_rows, files, totals = build_report(export, args.root)
    markdown = render_markdown(floor_rows, files, totals)
    print(markdown)
    if args.markdown_out:
        with open(args.markdown_out, "a", encoding="utf-8") as f:
            f.write(markdown)

    failed = False
    for row in floor_rows:
        if row["files"] == 0:
            print("coverage gate: %s matched no files in the export"
                  % row["label"], file=sys.stderr)
            failed = True
        elif not row["ok"]:
            print(
                "coverage gate: %s at %.2f%% is below the %.0f%% floor"
                % (row["label"], row["percent"], row["minimum"]),
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("coverage gate OK: all floors met", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
