#include "cli.h"

#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>

#include "analysis/postprocess.h"
#include "analysis/profile.h"
#include "analysis/render.h"
#include "analysis/report.h"
#include "analysis/rules.h"
#include "core/projection.h"
#include "core/validate.h"
#include "datagen/quest.h"
#include "datagen/realistic.h"
#include "io/atomic_write.h"
#include "io/checkpoint.h"
#include "io/loader.h"
#include "miner/miner.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/stats_domain.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/guard.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace tpm {

namespace {

constexpr char kUsage[] =
    "usage: tpm <command> [flags]\n"
    "\n"
    "commands:\n"
    "  stats <db>            print dataset statistics\n"
    "  profile <db>          symbol profiles + Allen-relation mix\n"
    "  mine <db> [flags]     mine temporal patterns (--threads=N parallel)\n"
    "  rules <db> [flags]    mine endpoint patterns and derive rules\n"
    "  generate [flags]      synthesize a dataset\n"
    "  convert <in> <out>    transcode between .tisd/.csv/.tpmb\n"
    "  check <db>            validate structural invariants (deep check)\n"
    "  report <file>         summarize a metrics / bench / postmortem JSON\n"
    "  faults                list fault-injection sites (TPM_FAULT=<site>:<n>)\n"
    "\n"
    "exit codes: 0 complete, 1 usage/error, 2 load error, 3 truncated run\n"
    "(budget exhausted or interrupted; partial output was written), 4 fault\n"
    "abnormal mine exits (3/4) also write a flight-recorder postmortem\n"
    "(tpm-postmortem.json; see `tpm mine --help`, --postmortem-out) and,\n"
    "with --checkpoint-out set, a resumable checkpoint (--resume=<path>)\n"
    "\n"
    "run `tpm <command> --help` for command flags\n";

// Exit-code contract (see kUsage and docs/ROBUSTNESS.md).
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitLoadError = 2;
constexpr int kExitTruncated = 3;
constexpr int kExitFault = 4;

// Maps a failure Status to its contract exit code: injected or environmental
// resource faults take precedence over the stage's fallback code so the CI
// fault matrix can assert on "4" regardless of which layer the site lives in.
int ExitCodeFor(const Status& status, int fallback) {
  if (fault::InjectionCount() > 0) return kExitFault;
  if (status.code() == StatusCode::kResourceExhausted) return kExitFault;
  return fallback;
}

int Fail(const Status& status, int code = kExitError) {
  std::cerr << "tpm: " << status.ToString() << "\n";
  return ExitCodeFor(status, code);
}

// Process-wide token wired to SIGINT/SIGTERM while `mine` runs, so an
// interrupted run unwinds cooperatively and still writes its outputs.
CancellationToken* GlobalCancellation() {
  static CancellationToken token;
  return &token;
}

extern "C" void TpmHandleTerminationSignal(int) {
  GlobalCancellation()->Cancel();  // async-signal-safe: one atomic store
}

// RAII (un)installation so in-process callers (tests) get default signal
// behavior back after the governed section.
class ScopedSignalCancellation {
 public:
  ScopedSignalCancellation() {
    GlobalCancellation()->Reset();
    prev_int_ = std::signal(SIGINT, TpmHandleTerminationSignal);
    prev_term_ = std::signal(SIGTERM, TpmHandleTerminationSignal);
  }
  ~ScopedSignalCancellation() {
    std::signal(SIGINT, prev_int_);
    std::signal(SIGTERM, prev_term_);
  }
  ScopedSignalCancellation(const ScopedSignalCancellation&) = delete;
  ScopedSignalCancellation& operator=(const ScopedSignalCancellation&) = delete;

 private:
  void (*prev_int_)(int);
  void (*prev_term_)(int);
};

// Observability flags shared by `mine` and `generate`: metrics snapshot and
// Chrome-trace dumps.
struct ObsFlags {
  std::string metrics_out;
  std::string metrics_format = "json";
  std::string trace_out;

  void Register(FlagParser* p) {
    p->AddString("metrics-out", &metrics_out,
                 "write a metrics snapshot to this file");
    p->AddString("metrics-format", &metrics_format,
                 "metrics snapshot format: json | prom");
    p->AddString("trace-out", &trace_out,
                 "write a Chrome trace_event JSON file (chrome://tracing)");
  }

  Status Validate() const {
    if (metrics_format != "json" && metrics_format != "prom") {
      return Status::InvalidArgument("--metrics-format must be json or prom (got " +
                                     metrics_format + ")");
    }
    return Status::OK();
  }

  /// Call before the instrumented work so spans are captured.
  void Begin() const {
    if (!trace_out.empty()) {
      obs::ClearTrace();
      obs::SetTraceEnabled(true);
    }
  }

  /// Writes the requested output files after the work completed. Atomic
  /// (temp-then-rename) so an interrupted run never leaves half a snapshot.
  Status Finish() const {
    if (!metrics_out.empty()) {
      const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
      TPM_RETURN_NOT_OK(WriteFileAtomic(
          metrics_out,
          metrics_format == "prom" ? snap.ToPrometheus() : snap.ToJson()));
    }
    if (!trace_out.empty()) {
      obs::SetTraceEnabled(false);
      Status st = obs::WriteChromeTraceFile(trace_out);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }
};

struct MineFlags {
  std::string type = "endpoint";
  std::string algo = "ptpminer";
  double minsup = 0.01;
  int64_t max_items = 0;
  int64_t max_length = 0;
  int64_t window = 0;
  int64_t top = 0;
  bool closed = false;
  bool maximal = false;
  bool describe = false;
  bool merge_conflicts = false;
  double budget = 0.0;
  int64_t memory_budget_mb = 0;
  std::string on_error = "fail";
  std::string output;
  bool no_pair_pruning = false;
  bool no_postfix_pruning = false;
  bool no_validity_pruning = false;
  std::string projection = "pseudo";
  int64_t threads = 1;
  bool steal = false;
  double progress = -1.0;  // < 0 = off; bare --progress means 1s cadence
  std::string postmortem_out = "auto";
  std::string checkpoint_out = "off";
  double checkpoint_every = 30.0;
  std::string resume;
  ObsFlags obs;
  bool help = false;

  void Register(FlagParser* p) {
    p->AddString("type", &type, "pattern language: endpoint | coincidence");
    p->AddString("algo", &algo,
                 "ptpminer | tprefixspan | levelwise (endpoint) | ctminer "
                 "(coincidence)");
    p->AddDouble("minsup", &minsup, "min support: fraction (0,1] or count > 1");
    p->AddInt64("max-items", &max_items, "max endpoints/symbols per pattern");
    p->AddInt64("max-length", &max_length, "max slices/coincidences per pattern");
    p->AddInt64("window", &window, "max occurrence time window (0 = off)");
    p->AddInt64("top", &top, "keep only the K highest-support patterns");
    p->AddBool("closed", &closed, "report closed patterns only");
    p->AddBool("maximal", &maximal, "report maximal patterns only");
    p->AddBool("describe", &describe, "render Allen-relation descriptions");
    p->AddBool("merge-conflicts", &merge_conflicts,
               "repair same-symbol conflicts on load");
    p->AddDouble("budget", &budget, "wall-clock budget in seconds (0 = off)");
    p->AddInt64("memory-budget-mb", &memory_budget_mb,
                "logical-byte memory budget in MiB (0 = off)");
    p->AddString("on-error", &on_error,
                 "malformed input lines: fail | skip (text formats)");
    p->AddString("output", &output, "write patterns to this file instead of stdout");
    p->AddBool("no-pair-pruning", &no_pair_pruning,
               "disable P-TPMiner pair pruning");
    p->AddBool("no-postfix-pruning", &no_postfix_pruning,
               "disable P-TPMiner postfix pruning");
    p->AddBool("no-validity-pruning", &no_validity_pruning,
               "disable P-TPMiner validity pruning");
    p->AddString("projection", &projection,
                 "growth-engine projection: pseudo (default) | copy "
                 "(deprecated legacy A/B path)");
    p->AddInt64("threads", &threads,
                "worker threads for growth-engine mining (1-64; output is "
                "byte-identical for any value)");
    p->AddBool("steal", &steal,
               "split heavyweight subtrees into stealable sub-units "
               "(growth engines with --threads > 1)");
    p->AddOptionalDouble("progress", &progress, 1.0,
                         "print live progress/ETA to stderr every N seconds "
                         "(bare --progress = 1s)");
    p->AddString("postmortem-out", &postmortem_out,
                 "flight-recorder postmortem on abnormal exit (3/4): auto "
                 "(tpm-postmortem.json in cwd) | off | <path>");
    p->AddString("checkpoint-out", &checkpoint_out,
                 "periodic resumable mining checkpoint: off (default) | auto "
                 "(tpm-checkpoint.tpmc in cwd) | <path>");
    p->AddDouble("checkpoint-every", &checkpoint_every,
                 "min seconds between checkpoint writes (0 = every completed "
                 "bucket/level)");
    p->AddString("resume", &resume,
                 "resume mining from a checkpoint written by --checkpoint-out");
    obs.Register(p);
    p->AddBool("help", &help, "show this help");
  }

  Status Validate() const {
    if (on_error != "fail" && on_error != "skip") {
      return Status::InvalidArgument("--on-error must be fail or skip (got " +
                                     on_error + ")");
    }
    if (memory_budget_mb < 0) {
      return Status::InvalidArgument("--memory-budget-mb must be >= 0");
    }
    // ToOptions() narrows these to unsigned fields; a negative value would
    // wrap to ~4 billion (an effectively unlimited cap or an unsatisfiable
    // window) instead of failing loudly.
    if (max_items < 0) return Status::InvalidArgument("--max-items must be >= 0");
    if (max_length < 0) return Status::InvalidArgument("--max-length must be >= 0");
    if (window < 0) return Status::InvalidArgument("--window must be >= 0");
    if (top < 0) return Status::InvalidArgument("--top must be >= 0");
    ProjectionMode mode;
    if (!ParseProjectionMode(projection, &mode)) {
      return Status::InvalidArgument("--projection must be pseudo or copy (got " +
                                     projection + ")");
    }
    // Hard range, not a clamp: --threads=0 or a negative/absurd count is a
    // typo'd invocation, and silently mining single-threaded would hide it.
    if (threads < 1 || threads > 64) {
      return Status::InvalidArgument(
          "--threads must be between 1 and 64 (got " +
          std::to_string(threads) + ")");
    }
    // -1.0 is the internal "off" sentinel; any explicitly passed negative
    // interval is a mistake.
    if (progress < 0.0 && progress != -1.0) {
      return Status::InvalidArgument("--progress interval must be >= 0 seconds");
    }
    if (postmortem_out.empty()) {
      return Status::InvalidArgument(
          "--postmortem-out needs auto, off, or a path");
    }
    if (checkpoint_out.empty()) {
      return Status::InvalidArgument(
          "--checkpoint-out needs auto, off, or a path");
    }
    if (checkpoint_every < 0.0) {
      return Status::InvalidArgument(
          "--checkpoint-every must be >= 0 seconds");
    }
    return obs.Validate();
  }

  MinerOptions ToOptions() const {
    MinerOptions options;
    options.min_support = minsup;
    options.max_items = static_cast<uint32_t>(max_items);
    options.max_length = static_cast<uint32_t>(max_length);
    options.max_window = window;
    options.time_budget_seconds = budget;
    options.memory_budget_bytes =
        static_cast<size_t>(memory_budget_mb) * 1024 * 1024;
    options.pair_pruning = !no_pair_pruning;
    options.postfix_pruning = !no_postfix_pruning;
    options.validity_pruning = !no_validity_pruning;
    options.threads = static_cast<uint32_t>(threads);
    options.steal = steal;
    ProjectionMode mode = ProjectionMode::kPseudo;
    if (ParseProjectionMode(projection, &mode)) options.projection = mode;
    if (mode == ProjectionMode::kCopy) {
      std::cerr << "warning: --projection=copy is deprecated; it exists only "
                   "for A/B comparison against the arena-backed pseudo "
                   "projection (see docs/ARCHITECTURE.md)\n";
    }
    return options;
  }
};

Result<IntervalDatabase> LoadForCli(const std::string& path, bool merge,
                                    bool skip_bad_lines = false) {
  TextReadOptions options;
  options.merge_conflicts = merge;
  options.on_error =
      skip_bad_lines ? TextErrorMode::kSkipLine : TextErrorMode::kFail;
  return LoadDatabase(path, options);
}

int CmdStats(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("stats needs exactly one <db> path"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status(), kExitLoadError);
  out << db->ComputeStats().ToString() << "\n";
  return 0;
}

template <typename PatternT>
Status EmitPatterns(std::vector<MinedPattern<PatternT>> patterns,
                    const Dictionary& dict, const MineFlags& flags,
                    const MiningStats& stats, std::ostream& out) {
  if (flags.closed) patterns = FilterClosed(std::move(patterns));
  if (flags.maximal) patterns = FilterMaximal(std::move(patterns));
  if (flags.top > 0) {
    patterns = TopKBySupport(std::move(patterns), static_cast<size_t>(flags.top));
  }

  std::ostringstream file;
  std::ostream* sink = flags.output.empty() ? &out : &file;
  for (const auto& mp : patterns) {
    *sink << mp.support << "\t" << mp.pattern.ToString(dict);
    if (flags.describe) *sink << "\t" << DescribeArrangement(mp.pattern, dict);
    *sink << "\n";
  }
  if (!flags.output.empty()) {
    TPM_RETURN_NOT_OK(WriteFileAtomic(flags.output, file.str()));
  }
  out << "# " << patterns.size() << " patterns, " << stats.ToString() << "\n";
  return Status::OK();
}

int CmdProfile(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  int64_t top = 10;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  parser.AddInt64("top", &top, "number of symbols to list");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("profile needs exactly one <db> path"));
  }
  if (top < 0) {
    return Fail(Status::InvalidArgument("--top must be >= 0"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status(), kExitLoadError);
  out << ProfileReport(*db, static_cast<size_t>(top));
  return 0;
}

// Persists the flight-recorder postmortem for an abnormal mine exit (3/4).
// "auto" writes tpm-postmortem.json in the working directory, "off"
// disables, anything else is the destination path. A write failure only
// warns — the postmortem must never mask the run's own exit code. When the
// run saved a checkpoint, its path is logged alongside (and embedded in)
// the postmortem so the two artifacts cross-reference.
void WritePostmortem(const obs::StatsDomain& domain, const MineFlags& flags,
                     const char* outcome, const std::string& detail,
                     const std::string& checkpoint_path) {
  if (!checkpoint_path.empty()) {
    std::cerr << "tpm: checkpoint saved to " << checkpoint_path
              << " (resume with --resume=" << checkpoint_path << ")\n";
  }
  if (flags.postmortem_out == "off") return;
  const std::string path = flags.postmortem_out == "auto"
                               ? std::string("tpm-postmortem.json")
                               : flags.postmortem_out;
  const Status st = WriteFileAtomic(
      path, obs::PostmortemJson(domain, outcome, detail, checkpoint_path));
  if (!st.ok()) {
    std::cerr << "tpm: postmortem write failed: " << st.ToString() << "\n";
  } else {
    std::cerr << "tpm: wrote postmortem to " << path << "\n";
  }
}

// Maps a failed Status to its exit code; fault exits (code 4) also get a
// postmortem — the flight recorder holds the events leading up to the
// injected/environmental failure.
int FailWithPostmortem(const Status& status, const MineFlags& flags,
                       const obs::StatsDomain& domain, int fallback,
                       const std::string& checkpoint_path = std::string()) {
  const int code = Fail(status, fallback);
  if (code == kExitFault) {
    WritePostmortem(domain, flags, "fault", status.ToString(),
                    checkpoint_path);
  }
  return code;
}

// Shared tail of `mine` for both pattern languages: sort, emit (atomically
// when --output is set), flush observability files, and map a truncated run
// to its contract exit code — after the partial results (and, for a
// truncated run, the postmortem) are on disk. Output-stage failures go
// through FailWithPostmortem: a fault injected while writing still owes the
// postmortem artifact.
template <typename ResultT>
int FinishMine(ResultT result, const IntervalDatabase& db,
               const MineFlags& flags, const obs::StatsDomain& domain,
               std::ostream& out, const std::string& checkpoint_path) {
  result.SortCanonically();
  const MiningStats stats = result.stats;
  if (Status st = EmitPatterns(std::move(result.patterns), db.dict(), flags,
                               stats, out);
      !st.ok()) {
    return FailWithPostmortem(st, flags, domain, kExitError, checkpoint_path);
  }
  if (Status st = flags.obs.Finish(); !st.ok()) {
    return FailWithPostmortem(st, flags, domain, kExitError, checkpoint_path);
  }
  if (stats.truncated) {
    WritePostmortem(domain, flags, "truncated",
                    StopReasonName(stats.stop_reason), checkpoint_path);
    std::cerr << "tpm: run truncated (" << StopReasonName(stats.stop_reason)
              << "); partial results were written\n";
    return kExitTruncated;
  }
  return kExitOk;
}

// A mining failure still attempts the observability outputs so a fault run
// leaves usable metrics behind, then maps the Status to an exit code.
int FailMine(const Status& status, const MineFlags& flags,
             const obs::StatsDomain& domain,
             const std::string& checkpoint_path = std::string()) {
  (void)flags.obs.Finish();
  return FailWithPostmortem(status, flags, domain, kExitError,
                            checkpoint_path);
}

int CmdMine(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  MineFlags flags;
  flags.Register(&parser);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (flags.help) {
    out << "usage: tpm mine <db> [flags]\n" << parser.Usage();
    return 0;
  }
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("mine needs exactly one <db> path"));
  }
  if (Status st = flags.Validate(); !st.ok()) return Fail(st);
  flags.obs.Begin();

  // The whole run — load included — charges one stats domain so any
  // abnormal exit (3/4) can dump a flight-recorder postmortem; the miner
  // folds the domain's delta into the global registry itself, so
  // --metrics-out still sees everything.
  obs::StatsDomain domain("mine");
  domain.RecordEvent("load.begin");
  auto db = LoadForCli((*positional)[0], flags.merge_conflicts,
                       flags.on_error == "skip");
  if (!db.ok()) {
    return FailWithPostmortem(db.status(), flags, domain, kExitLoadError);
  }
  domain.RecordEvent("load.done", db->size(), db->TotalIntervals());

  // From here the run is governed: SIGINT/SIGTERM cancel cooperatively and
  // the partial results still flow through FinishMine.
  ScopedSignalCancellation signals;
  MinerOptions options = flags.ToOptions();
  options.cancellation = GlobalCancellation();
  options.stats_domain = &domain;

  // Checkpointing: an interval-gated writer the miner drives at completed
  // unit boundaries, and/or a prior checkpoint to resume from. Identity
  // validation (database fingerprint + options) happens inside the miner.
  std::unique_ptr<CheckpointWriter> ckpt_writer;
  if (flags.checkpoint_out != "off") {
    const std::string ckpt_out = flags.checkpoint_out == "auto"
                                     ? std::string("tpm-checkpoint.tpmc")
                                     : flags.checkpoint_out;
    ckpt_writer =
        std::make_unique<CheckpointWriter>(ckpt_out, flags.checkpoint_every);
    options.checkpoint_writer = ckpt_writer.get();
  }
  Checkpoint resume_ckpt;
  if (!flags.resume.empty()) {
    domain.RecordEvent("resume.load");
    auto loaded = ReadCheckpointFile(flags.resume);
    if (!loaded.ok()) {
      // Corruption pins section + byte offset and exits with the load-error
      // code, mirroring the TPMB reader contract.
      return FailWithPostmortem(loaded.status().WithContext(flags.resume),
                                flags, domain, kExitLoadError);
    }
    resume_ckpt = std::move(*loaded);
    options.resume = &resume_ckpt;
  }
  // Only a checkpoint that actually reached disk is worth advertising on
  // the exit paths.
  auto ckpt_path = [&ckpt_writer]() -> std::string {
    return (ckpt_writer != nullptr && ckpt_writer->writes() > 0)
               ? ckpt_writer->path()
               : std::string();
  };

  std::unique_ptr<obs::ProgressTracker> progress;
  if (flags.progress >= 0.0) {
    progress = std::make_unique<obs::ProgressTracker>(
        flags.progress,
        [](const obs::ProgressSnapshot& snap) {
          std::cerr << snap.ToString() << "\n";
        },
        &domain);
    options.progress = progress.get();
  }

  if (flags.type == "endpoint") {
    std::unique_ptr<EndpointMiner> miner;
    if (flags.algo == "ptpminer") {
      miner = MakePTPMinerE();
    } else if (flags.algo == "tprefixspan") {
      miner = MakeTPrefixSpan();
    } else if (flags.algo == "levelwise") {
      miner = MakeLevelwiseMiner();
    } else {
      return Fail(Status::InvalidArgument("unknown endpoint --algo " + flags.algo));
    }
    auto result = miner->Mine(*db, options);
    if (!result.ok()) return FailMine(result.status(), flags, domain, ckpt_path());
    return FinishMine(std::move(*result), *db, flags, domain, out, ckpt_path());
  }
  if (flags.type == "coincidence") {
    std::unique_ptr<CoincidenceMiner> miner;
    if (flags.algo == "ptpminer") {
      miner = MakePTPMinerC();
    } else if (flags.algo == "ctminer") {
      miner = MakeCTMiner();
    } else {
      return Fail(
          Status::InvalidArgument("unknown coincidence --algo " + flags.algo));
    }
    auto result = miner->Mine(*db, options);
    if (!result.ok()) return FailMine(result.status(), flags, domain, ckpt_path());
    return FinishMine(std::move(*result), *db, flags, domain, out, ckpt_path());
  }
  return Fail(Status::InvalidArgument("unknown --type " + flags.type));
}

int CmdFaults(std::ostream& out) {
  for (const std::string& site : fault::RegisteredSites()) {
    out << site << "\n";
  }
  return 0;
}

int CmdRules(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  MineFlags flags;
  flags.Register(&parser);
  double min_confidence = 0.5;
  parser.AddDouble("min-confidence", &min_confidence, "rule confidence floor");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (flags.help) {
    out << "usage: tpm rules <db> [flags]\n" << parser.Usage();
    return 0;
  }
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("rules needs exactly one <db> path"));
  }
  auto db = LoadForCli((*positional)[0], flags.merge_conflicts);
  if (!db.ok()) return Fail(db.status(), kExitLoadError);

  auto result = MakePTPMinerE()->Mine(*db, flags.ToOptions());
  if (!result.ok()) return Fail(result.status());
  auto rules = GenerateRules(result->patterns, min_confidence);
  for (const TemporalRule& r : rules) {
    out << r.ToString(db->dict()) << "\n";
  }
  out << "# " << rules.size() << " rules from " << result->patterns.size()
      << " patterns\n";
  return 0;
}

int CmdGenerate(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  std::string kind = "quest";
  std::string output;
  int64_t sequences = 1000;
  int64_t symbols = 200;
  double avg_intervals = 8.0;
  int64_t seed = 42;
  ObsFlags obs;
  bool help = false;
  parser.AddString("kind", &kind, "quest | asl | library | stock");
  parser.AddString("output", &output, "destination file (.tisd/.csv/.tpmb)");
  parser.AddInt64("sequences", &sequences, "number of sequences (quest/library/asl)");
  parser.AddInt64("symbols", &symbols, "alphabet size (quest/library)");
  parser.AddDouble("avg-intervals", &avg_intervals, "intervals per sequence (quest)");
  parser.AddInt64("seed", &seed, "generator seed");
  obs.Register(&parser);
  parser.AddBool("help", &help, "show this help");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (help) {
    out << "usage: tpm generate [flags]\n" << parser.Usage();
    return 0;
  }
  if (output.empty()) {
    return Fail(Status::InvalidArgument("generate needs --output=<file>"));
  }
  // The generator configs hold uint32 counts; a negative flag would wrap to
  // ~4 billion and turn a typo into a runaway allocation.
  constexpr int64_t kMaxCount = 100'000'000;
  if (sequences <= 0 || sequences > kMaxCount) {
    return Fail(Status::InvalidArgument("--sequences must be in [1, 1e8]"));
  }
  if (symbols <= 0 || symbols > kMaxCount) {
    return Fail(Status::InvalidArgument("--symbols must be in [1, 1e8]"));
  }
  if (avg_intervals <= 0.0) {
    return Fail(Status::InvalidArgument("--avg-intervals must be positive"));
  }
  if (Status st = obs.Validate(); !st.ok()) return Fail(st);
  obs.Begin();

  Result<IntervalDatabase> db = Status::InvalidArgument("unknown --kind " + kind);
  {
    TPM_TRACE_SPAN("datagen.generate");
    if (kind == "quest") {
      QuestConfig config;
      config.num_sequences = static_cast<uint32_t>(sequences);
      config.num_symbols = static_cast<uint32_t>(symbols);
      config.avg_intervals_per_sequence = avg_intervals;
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateQuest(config);
    } else if (kind == "asl") {
      AslConfig config;
      config.num_utterances = static_cast<uint32_t>(sequences);
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateAslLike(config);
    } else if (kind == "library") {
      LibraryConfig config;
      config.num_borrowers = static_cast<uint32_t>(sequences);
      config.num_categories = static_cast<uint32_t>(symbols);
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateLibraryLike(config);
    } else if (kind == "stock") {
      StockConfig config;
      config.num_stocks = static_cast<uint32_t>(sequences);
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateStockLike(config);
    }
  }
  if (!db.ok()) return Fail(db.status());
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("datagen.sequences")->Set(db->size());
  reg.GetGauge("datagen.intervals")->Set(db->TotalIntervals());
  Status st = SaveDatabase(*db, output);
  if (!st.ok()) return Fail(st);
  if (Status obs_st = obs.Finish(); !obs_st.ok()) return Fail(obs_st);
  out << "wrote " << db->size() << " sequences (" << db->TotalIntervals()
      << " intervals) to " << output << "\n";
  return 0;
}

int CmdConvert(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 2) {
    return Fail(Status::InvalidArgument("convert needs <in> and <out> paths"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status(), kExitLoadError);
  Status st = SaveDatabase(*db, (*positional)[1]);
  if (!st.ok()) return Fail(st);
  out << "converted " << (*positional)[0] << " -> " << (*positional)[1] << " ("
      << db->size() << " sequences)\n";
  return 0;
}

// `tpm check <db>`: the strictest structural gate short of mining. Loads the
// file, then runs ValidateDatabaseDeep — database invariants plus both
// derived mining representations (endpoint pairing, coincidence normal
// form). Any violation exits with the load-error code: a file that fails
// here would corrupt a mining run, so callers should treat it like a file
// that failed to parse.
int CmdCheck(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("check needs exactly one <db> path"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status(), kExitLoadError);
  Status st = ValidateDatabaseDeep(*db);
  if (!st.ok()) {
    return Fail(st.WithContext((*positional)[0]), kExitLoadError);
  }
  out << (*positional)[0] << ": OK (" << db->size() << " sequences, "
      << db->TotalIntervals() << " intervals, "
      << db->dict().size() << " symbols)\n";
  return kExitOk;
}

// `tpm report <file>`: render one of this toolchain's own artifacts — a
// --metrics-out snapshot, a BENCH_*.json record array, a postmortem, or a
// TPMC mining checkpoint — as a human-readable search summary (progress,
// pruning effectiveness, per-depth node histogram, memory peaks).
int CmdReport(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("report needs exactly one <file> path"));
  }
  const std::string& path = (*positional)[0];
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(Status::NotFound("cannot open " + path), kExitLoadError);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  if (content.size() >= 4 && content.compare(0, 4, "TPMC") == 0) {
    auto ckpt = ParseCheckpoint(content);
    if (!ckpt.ok()) {
      return Fail(ckpt.status().WithContext(path), kExitLoadError);
    }
    auto report = RenderCheckpointReport(*ckpt);
    if (!report.ok()) return Fail(report.status().WithContext(path));
    out << *report;
    return kExitOk;
  }
  auto report = RenderMetricsReport(content);
  if (!report.ok()) return Fail(report.status().WithContext(path));
  out << *report;
  return kExitOk;
}

}  // namespace

int TpmCliMain(int argc, const char* const* argv, std::ostream& out) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 1;
  }
  const std::string command = argv[1];
  // Shift so subcommand parsers see their own argv[0].
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "stats") return CmdStats(sub_argc, sub_argv, out);
  if (command == "profile") return CmdProfile(sub_argc, sub_argv, out);
  if (command == "mine") return CmdMine(sub_argc, sub_argv, out);
  if (command == "rules") return CmdRules(sub_argc, sub_argv, out);
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv, out);
  if (command == "convert") return CmdConvert(sub_argc, sub_argv, out);
  if (command == "check") return CmdCheck(sub_argc, sub_argv, out);
  if (command == "report") return CmdReport(sub_argc, sub_argv, out);
  if (command == "faults") return CmdFaults(out);
  if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  }
  std::cerr << "tpm: unknown command '" << command << "'\n" << kUsage;
  return 1;
}

}  // namespace tpm
