#include "cli.h"

#include <fstream>
#include <iostream>
#include <ostream>

#include "analysis/postprocess.h"
#include "analysis/profile.h"
#include "analysis/render.h"
#include "analysis/rules.h"
#include "datagen/quest.h"
#include "datagen/realistic.h"
#include "io/loader.h"
#include "miner/miner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace tpm {

namespace {

constexpr char kUsage[] =
    "usage: tpm <command> [flags]\n"
    "\n"
    "commands:\n"
    "  stats <db>            print dataset statistics\n"
    "  profile <db>          symbol profiles + Allen-relation mix\n"
    "  mine <db> [flags]     mine temporal patterns\n"
    "  rules <db> [flags]    mine endpoint patterns and derive rules\n"
    "  generate [flags]      synthesize a dataset\n"
    "  convert <in> <out>    transcode between .tisd/.csv/.tpmb\n"
    "\n"
    "run `tpm <command> --help` for command flags\n";

int Fail(const Status& status) {
  std::cerr << "tpm: " << status.ToString() << "\n";
  return 1;
}

// Observability flags shared by `mine` and `generate`: metrics snapshot and
// Chrome-trace dumps.
struct ObsFlags {
  std::string metrics_out;
  std::string metrics_format = "json";
  std::string trace_out;

  void Register(FlagParser* p) {
    p->AddString("metrics-out", &metrics_out,
                 "write a metrics snapshot to this file");
    p->AddString("metrics-format", &metrics_format,
                 "metrics snapshot format: json | prom");
    p->AddString("trace-out", &trace_out,
                 "write a Chrome trace_event JSON file (chrome://tracing)");
  }

  Status Validate() const {
    if (metrics_format != "json" && metrics_format != "prom") {
      return Status::InvalidArgument("--metrics-format must be json or prom (got " +
                                     metrics_format + ")");
    }
    return Status::OK();
  }

  /// Call before the instrumented work so spans are captured.
  void Begin() const {
    if (!trace_out.empty()) {
      obs::ClearTrace();
      obs::SetTraceEnabled(true);
    }
  }

  /// Writes the requested output files after the work completed.
  Status Finish() const {
    if (!metrics_out.empty()) {
      const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
      std::ofstream f(metrics_out);
      if (!f) return Status::IOError("cannot open " + metrics_out);
      f << (metrics_format == "prom" ? snap.ToPrometheus() : snap.ToJson());
      if (!f) return Status::IOError("write failed for " + metrics_out);
    }
    if (!trace_out.empty()) {
      obs::SetTraceEnabled(false);
      Status st = obs::WriteChromeTraceFile(trace_out);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }
};

struct MineFlags {
  std::string type = "endpoint";
  std::string algo = "ptpminer";
  double minsup = 0.01;
  int64_t max_items = 0;
  int64_t max_length = 0;
  int64_t window = 0;
  int64_t top = 0;
  bool closed = false;
  bool maximal = false;
  bool describe = false;
  bool merge_conflicts = false;
  double budget = 0.0;
  std::string output;
  bool no_pair_pruning = false;
  bool no_postfix_pruning = false;
  bool no_validity_pruning = false;
  ObsFlags obs;
  bool help = false;

  void Register(FlagParser* p) {
    p->AddString("type", &type, "pattern language: endpoint | coincidence");
    p->AddString("algo", &algo,
                 "ptpminer | tprefixspan | levelwise (endpoint) | ctminer "
                 "(coincidence)");
    p->AddDouble("minsup", &minsup, "min support: fraction (0,1] or count > 1");
    p->AddInt64("max-items", &max_items, "max endpoints/symbols per pattern");
    p->AddInt64("max-length", &max_length, "max slices/coincidences per pattern");
    p->AddInt64("window", &window, "max occurrence time window (0 = off)");
    p->AddInt64("top", &top, "keep only the K highest-support patterns");
    p->AddBool("closed", &closed, "report closed patterns only");
    p->AddBool("maximal", &maximal, "report maximal patterns only");
    p->AddBool("describe", &describe, "render Allen-relation descriptions");
    p->AddBool("merge-conflicts", &merge_conflicts,
               "repair same-symbol conflicts on load");
    p->AddDouble("budget", &budget, "wall-clock budget in seconds (0 = off)");
    p->AddString("output", &output, "write patterns to this file instead of stdout");
    p->AddBool("no-pair-pruning", &no_pair_pruning,
               "disable P-TPMiner pair pruning");
    p->AddBool("no-postfix-pruning", &no_postfix_pruning,
               "disable P-TPMiner postfix pruning");
    p->AddBool("no-validity-pruning", &no_validity_pruning,
               "disable P-TPMiner validity pruning");
    obs.Register(p);
    p->AddBool("help", &help, "show this help");
  }

  MinerOptions ToOptions() const {
    MinerOptions options;
    options.min_support = minsup;
    options.max_items = static_cast<uint32_t>(max_items);
    options.max_length = static_cast<uint32_t>(max_length);
    options.max_window = window;
    options.time_budget_seconds = budget;
    options.pair_pruning = !no_pair_pruning;
    options.postfix_pruning = !no_postfix_pruning;
    options.validity_pruning = !no_validity_pruning;
    return options;
  }
};

Result<IntervalDatabase> LoadForCli(const std::string& path, bool merge) {
  TextReadOptions options;
  options.merge_conflicts = merge;
  return LoadDatabase(path, options);
}

int CmdStats(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("stats needs exactly one <db> path"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status());
  out << db->ComputeStats().ToString() << "\n";
  return 0;
}

template <typename PatternT>
int EmitPatterns(std::vector<MinedPattern<PatternT>> patterns,
                 const Dictionary& dict, const MineFlags& flags,
                 const MiningStats& stats, std::ostream& out) {
  if (flags.closed) patterns = FilterClosed(std::move(patterns));
  if (flags.maximal) patterns = FilterMaximal(std::move(patterns));
  if (flags.top > 0) {
    patterns = TopKBySupport(std::move(patterns), static_cast<size_t>(flags.top));
  }

  std::ostream* sink = &out;
  std::ofstream file;
  if (!flags.output.empty()) {
    file.open(flags.output);
    if (!file) return Fail(Status::IOError("cannot open " + flags.output));
    sink = &file;
  }
  for (const auto& mp : patterns) {
    *sink << mp.support << "\t" << mp.pattern.ToString(dict);
    if (flags.describe) *sink << "\t" << DescribeArrangement(mp.pattern, dict);
    *sink << "\n";
  }
  out << "# " << patterns.size() << " patterns, " << stats.ToString() << "\n";
  return 0;
}

int CmdProfile(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  int64_t top = 10;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  parser.AddInt64("top", &top, "number of symbols to list");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("profile needs exactly one <db> path"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status());
  out << ProfileReport(*db, static_cast<size_t>(top));
  return 0;
}

int CmdMine(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  MineFlags flags;
  flags.Register(&parser);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (flags.help) {
    out << "usage: tpm mine <db> [flags]\n" << parser.Usage();
    return 0;
  }
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("mine needs exactly one <db> path"));
  }
  if (Status st = flags.obs.Validate(); !st.ok()) return Fail(st);
  flags.obs.Begin();
  auto db = LoadForCli((*positional)[0], flags.merge_conflicts);
  if (!db.ok()) return Fail(db.status());

  const MinerOptions options = flags.ToOptions();
  if (flags.type == "endpoint") {
    std::unique_ptr<EndpointMiner> miner;
    if (flags.algo == "ptpminer") {
      miner = MakePTPMinerE();
    } else if (flags.algo == "tprefixspan") {
      miner = MakeTPrefixSpan();
    } else if (flags.algo == "levelwise") {
      miner = MakeLevelwiseMiner();
    } else {
      return Fail(Status::InvalidArgument("unknown endpoint --algo " + flags.algo));
    }
    auto result = miner->Mine(*db, options);
    if (!result.ok()) return Fail(result.status());
    result->SortCanonically();
    const int rc = EmitPatterns(std::move(result->patterns), db->dict(), flags,
                                result->stats, out);
    if (rc != 0) return rc;
    if (Status st = flags.obs.Finish(); !st.ok()) return Fail(st);
    return 0;
  }
  if (flags.type == "coincidence") {
    std::unique_ptr<CoincidenceMiner> miner;
    if (flags.algo == "ptpminer") {
      miner = MakePTPMinerC();
    } else if (flags.algo == "ctminer") {
      miner = MakeCTMiner();
    } else {
      return Fail(
          Status::InvalidArgument("unknown coincidence --algo " + flags.algo));
    }
    auto result = miner->Mine(*db, options);
    if (!result.ok()) return Fail(result.status());
    result->SortCanonically();
    const int rc = EmitPatterns(std::move(result->patterns), db->dict(), flags,
                                result->stats, out);
    if (rc != 0) return rc;
    if (Status st = flags.obs.Finish(); !st.ok()) return Fail(st);
    return 0;
  }
  return Fail(Status::InvalidArgument("unknown --type " + flags.type));
}

int CmdRules(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  MineFlags flags;
  flags.Register(&parser);
  double min_confidence = 0.5;
  parser.AddDouble("min-confidence", &min_confidence, "rule confidence floor");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (flags.help) {
    out << "usage: tpm rules <db> [flags]\n" << parser.Usage();
    return 0;
  }
  if (positional->size() != 1) {
    return Fail(Status::InvalidArgument("rules needs exactly one <db> path"));
  }
  auto db = LoadForCli((*positional)[0], flags.merge_conflicts);
  if (!db.ok()) return Fail(db.status());

  auto result = MakePTPMinerE()->Mine(*db, flags.ToOptions());
  if (!result.ok()) return Fail(result.status());
  auto rules = GenerateRules(result->patterns, min_confidence);
  for (const TemporalRule& r : rules) {
    out << r.ToString(db->dict()) << "\n";
  }
  out << "# " << rules.size() << " rules from " << result->patterns.size()
      << " patterns\n";
  return 0;
}

int CmdGenerate(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  std::string kind = "quest";
  std::string output;
  int64_t sequences = 1000;
  int64_t symbols = 200;
  double avg_intervals = 8.0;
  int64_t seed = 42;
  ObsFlags obs;
  bool help = false;
  parser.AddString("kind", &kind, "quest | asl | library | stock");
  parser.AddString("output", &output, "destination file (.tisd/.csv/.tpmb)");
  parser.AddInt64("sequences", &sequences, "number of sequences (quest/library/asl)");
  parser.AddInt64("symbols", &symbols, "alphabet size (quest/library)");
  parser.AddDouble("avg-intervals", &avg_intervals, "intervals per sequence (quest)");
  parser.AddInt64("seed", &seed, "generator seed");
  obs.Register(&parser);
  parser.AddBool("help", &help, "show this help");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (help) {
    out << "usage: tpm generate [flags]\n" << parser.Usage();
    return 0;
  }
  if (output.empty()) {
    return Fail(Status::InvalidArgument("generate needs --output=<file>"));
  }
  if (Status st = obs.Validate(); !st.ok()) return Fail(st);
  obs.Begin();

  Result<IntervalDatabase> db = Status::InvalidArgument("unknown --kind " + kind);
  {
    TPM_TRACE_SPAN("datagen.generate");
    if (kind == "quest") {
      QuestConfig config;
      config.num_sequences = static_cast<uint32_t>(sequences);
      config.num_symbols = static_cast<uint32_t>(symbols);
      config.avg_intervals_per_sequence = avg_intervals;
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateQuest(config);
    } else if (kind == "asl") {
      AslConfig config;
      config.num_utterances = static_cast<uint32_t>(sequences);
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateAslLike(config);
    } else if (kind == "library") {
      LibraryConfig config;
      config.num_borrowers = static_cast<uint32_t>(sequences);
      config.num_categories = static_cast<uint32_t>(symbols);
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateLibraryLike(config);
    } else if (kind == "stock") {
      StockConfig config;
      config.num_stocks = static_cast<uint32_t>(sequences);
      config.seed = static_cast<uint64_t>(seed);
      db = GenerateStockLike(config);
    }
  }
  if (!db.ok()) return Fail(db.status());
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("datagen.sequences")->Set(db->size());
  reg.GetGauge("datagen.intervals")->Set(db->TotalIntervals());
  Status st = SaveDatabase(*db, output);
  if (!st.ok()) return Fail(st);
  if (Status obs_st = obs.Finish(); !obs_st.ok()) return Fail(obs_st);
  out << "wrote " << db->size() << " sequences (" << db->TotalIntervals()
      << " intervals) to " << output << "\n";
  return 0;
}

int CmdConvert(int argc, const char* const* argv, std::ostream& out) {
  FlagParser parser;
  bool merge = false;
  parser.AddBool("merge-conflicts", &merge, "repair same-symbol conflicts");
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (positional->size() != 2) {
    return Fail(Status::InvalidArgument("convert needs <in> and <out> paths"));
  }
  auto db = LoadForCli((*positional)[0], merge);
  if (!db.ok()) return Fail(db.status());
  Status st = SaveDatabase(*db, (*positional)[1]);
  if (!st.ok()) return Fail(st);
  out << "converted " << (*positional)[0] << " -> " << (*positional)[1] << " ("
      << db->size() << " sequences)\n";
  return 0;
}

}  // namespace

int TpmCliMain(int argc, const char* const* argv, std::ostream& out) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 1;
  }
  const std::string command = argv[1];
  // Shift so subcommand parsers see their own argv[0].
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "stats") return CmdStats(sub_argc, sub_argv, out);
  if (command == "profile") return CmdProfile(sub_argc, sub_argv, out);
  if (command == "mine") return CmdMine(sub_argc, sub_argv, out);
  if (command == "rules") return CmdRules(sub_argc, sub_argv, out);
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv, out);
  if (command == "convert") return CmdConvert(sub_argc, sub_argv, out);
  if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  }
  std::cerr << "tpm: unknown command '" << command << "'\n" << kUsage;
  return 1;
}

}  // namespace tpm
