// The tpm command-line tool, as a library so tests can drive it.

#pragma once


#include <iosfwd>

namespace tpm {

/// Runs the CLI. `out` receives normal output (main() passes std::cout);
/// errors go to stderr. Returns the process exit code.
///
/// Subcommands:
///   tpm stats <db>                         dataset statistics
///   tpm mine <db> [flags]                  mine patterns
///   tpm rules <db> [flags]                 mine + derive temporal rules
///   tpm generate [flags]                   synthesize a dataset
///   tpm convert <in> <out>                 transcode between formats
int TpmCliMain(int argc, const char* const* argv, std::ostream& out);

}  // namespace tpm

