#include <iostream>

#include "cli.h"

int main(int argc, char** argv) {
  return tpm::TpmCliMain(argc, argv, std::cout);
}
